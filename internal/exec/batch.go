// Batch-at-a-time execution. The tuple-at-a-time Operator protocol charges
// every tuple an interface dispatch, a bounds-checked slice header, and — in
// parallel plans — a channel synchronization. The batch protocol amortizes
// all three: producers hand over flat arenas of DefaultBatchSize fixed-width
// tuples, and hot loops (hash-division's dividend pass, the parallel
// shuffle) iterate plain byte offsets.
//
// The two protocols compose: any Operator can be lifted to batches with
// Lift (copying tuples into an arena) and any BatchOperator lowered back
// with Lower, so every existing algorithm keeps working unchanged. Operators
// with a natural batch form (TableScan, MemScan, Filter, Project,
// hash-division) additionally implement NextBatch natively; NativeBatch
// discovers that capability and Opaque hides it (the ablation lever).
package exec

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/tuple"
)

// DefaultBatchSize is the number of tuples per batch when the caller does
// not choose one. 1024 keeps a 16-byte-record batch (the paper's dividend
// width) at 16 KB — two buffer-pool pages, comfortably L1/L2-resident —
// while amortizing per-batch overhead to noise. See DESIGN.md §7 for the
// 64/256/1024 ablation.
const DefaultBatchSize = 1024

// arenaPool recycles batch arenas across batches, operators, and queries so
// steady-state batch execution allocates nothing per batch.
var arenaPool sync.Pool

// Batch is a flat byte arena of up to Cap fixed-width tuples sharing one
// schema. Tuple i lives at bytes [i*width, (i+1)*width). A batch is either
// *owned* (tuples appended into its recyclable arena) or *aliased* (the view
// points into foreign memory such as a pinned buffer-pool page; see
// SetAlias). In both cases tuples returned by Tuple alias batch storage and
// are only valid until the producer's next NextBatch/Close; callers that
// retain tuples must Clone them — the same contract as Operator.Next.
type Batch struct {
	schema   *tuple.Schema
	width    int
	owned    []byte // recyclable arena backing appended tuples
	data     []byte // current view: owned, or foreign memory when aliased
	n        int
	aliased  bool
	released bool
}

// NewBatch returns an empty batch for schema tuples with room for capTuples
// (DefaultBatchSize when <= 0), reusing a pooled arena when one fits.
func NewBatch(schema *tuple.Schema, capTuples int) *Batch {
	if capTuples <= 0 {
		capTuples = DefaultBatchSize
	}
	w := schema.Width()
	need := capTuples * w
	arena, ok := arenaPool.Get().([]byte)
	if !ok || cap(arena) < need {
		arena = make([]byte, 0, need)
	}
	arena = arena[:0]
	return &Batch{schema: schema, width: w, owned: arena, data: arena}
}

// Schema returns the layout shared by every tuple in the batch.
func (b *Batch) Schema() *tuple.Schema { return b.schema }

// Len returns the number of tuples currently in the batch.
func (b *Batch) Len() int { return b.n }

// Cap returns the arena capacity in tuples. Append past Cap grows the arena,
// so Cap is the producer's target size, not a hard limit.
func (b *Batch) Cap() int { return cap(b.owned) / b.width }

// Full reports whether the owned arena has reached its capacity.
func (b *Batch) Full() bool { return b.n >= b.Cap() }

// Tuple returns tuple i. The slice aliases batch storage (capped so appends
// cannot clobber neighbors) and is valid until the next NextBatch or Close
// of the producing operator.
func (b *Batch) Tuple(i int) tuple.Tuple {
	off := i * b.width
	return tuple.Tuple(b.data[off : off+b.width : off+b.width])
}

// Reset empties the batch for refilling, dropping any alias. Resetting a
// released batch revives it with a fresh (empty) arena, so a later Release
// returns only memory this batch grew itself.
func (b *Batch) Reset() {
	b.owned = b.owned[:0]
	b.data = b.owned
	b.n = 0
	b.aliased = false
	b.released = false
}

// Append copies t into the arena. t must have the batch's schema width.
func (b *Batch) Append(t tuple.Tuple) {
	if b.aliased {
		panic("exec: Append on aliased Batch without Reset")
	}
	if len(t) != b.width {
		panic(fmt.Sprintf("exec: Batch.Append tuple width %d, schema wants %d", len(t), b.width))
	}
	b.owned = append(b.owned, t...)
	b.data = b.owned
	b.n++
}

// AppendSlot reserves the next tuple slot and returns it zeroed for the
// caller to fill in place (Project writes its projection directly into the
// arena this way).
func (b *Batch) AppendSlot() tuple.Tuple {
	if b.aliased {
		panic("exec: AppendSlot on aliased Batch without Reset")
	}
	off := len(b.owned)
	if off+b.width <= cap(b.owned) {
		b.owned = b.owned[:off+b.width]
	} else {
		b.owned = append(b.owned, make([]byte, b.width)...)
	}
	slot := b.owned[off : off+b.width : off+b.width]
	clear(slot) // recycled arenas carry stale bytes
	b.data = b.owned
	b.n++
	return slot
}

// SetAlias points the batch at n tuples stored contiguously in data —
// typically a pinned buffer-pool page — without copying a byte. The caller
// owns data's lifetime: it must outlive every Tuple reference, i.e. until
// its own next page fix. The batch's arena is kept for later Reset+Append
// use.
func (b *Batch) SetAlias(data []byte, n int) {
	b.data = data[: n*b.width : n*b.width]
	b.n = n
	b.aliased = true
	b.owned = b.owned[:0]
}

// Unalias copies an aliased batch's tuples into the batch's own arena, so
// the contents survive the foreign memory they aliased (e.g. a pinned page
// about to be unfixed by the producer's next NextBatch). A no-op on owned
// batches. After Unalias the batch is owned and may cross goroutines or
// outlive its producer like any owned batch.
func (b *Batch) Unalias() {
	if !b.aliased {
		return
	}
	b.owned = append(b.owned[:0], b.data...)
	b.data = b.owned
	b.aliased = false
}

// Raw returns the batch's tuples as one contiguous byte slice of exactly
// Len()*width bytes — the zero-copy wire form of the batch. The slice aliases
// batch storage under the same lifetime rules as Tuple: valid until the
// producer's next NextBatch, Reset, or Close. The network exchange writes
// this slice straight to the socket (no per-tuple encoding) and the receive
// side aliases its read buffer back into a batch with SetAlias.
func (b *Batch) Raw() []byte { return b.data[:b.n*b.width] }

// Truncate shortens the batch to its first n tuples (no-op when n >= Len).
// The fault injector uses this to cut a stream at an exact tuple count.
func (b *Batch) Truncate(n int) {
	if n < 0 || n >= b.n {
		return
	}
	b.n = n
	b.data = b.data[: n*b.width : n*b.width]
	if !b.aliased {
		b.owned = b.owned[:n*b.width]
	}
}

// Release returns the arena to the shared pool. The batch (and every tuple
// obtained from it) must not be used afterwards. Release is idempotent: a
// second call is a no-op, never a second arenaPool.Put — a double put would
// hand the same arena to two live batches, silently sharing memory between
// queries. Releasing an aliased batch returns only the owned arena; the
// foreign memory it viewed never enters the pool.
func (b *Batch) Release() {
	if b.released {
		return
	}
	b.released = true
	if b.owned != nil {
		arenaPool.Put(b.owned[:0]) //nolint:staticcheck // []byte boxing is one header per query
	}
	b.owned, b.data, b.n = nil, nil, 0
	b.aliased = false
}

// BatchOperator is the batch-at-a-time face of the open-next-close protocol.
// NextBatch fills the caller-provided batch (the callee may Reset+Append
// into its arena or SetAlias it at internal storage) and returns io.EOF
// once the input is exhausted. On a non-EOF error the batch contents are
// undefined. Like Operator.Next, batch contents are valid only until the
// next NextBatch or Close.
type BatchOperator interface {
	Schema() *tuple.Schema
	Open() error
	NextBatch(b *Batch) error
	Close() error
}

// NativeBatch reports whether op implements the batch protocol natively
// (without a lifting copy). Operators discovered here share Open/Close state
// with their tuple protocol: use one protocol per open, not both.
func NativeBatch(op Operator) (BatchOperator, bool) {
	bop, ok := op.(BatchOperator)
	return bop, ok
}

// ToBatch returns op's native batch form when it has one, or a lifted
// adapter otherwise. The result always honors the BatchOperator contract.
func ToBatch(op Operator) BatchOperator {
	if bop, ok := NativeBatch(op); ok {
		return bop
	}
	return Lift(op)
}

// FillBatch fills b from op.Next, copying tuples into the arena until the
// batch is full or the input ends. It returns io.EOF only when no tuple was
// gathered; a mid-batch error discards the partial batch and is returned
// as-is.
func FillBatch(op Operator, b *Batch) error {
	b.Reset()
	for !b.Full() {
		t, err := op.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		b.Append(t)
	}
	if b.Len() == 0 {
		return io.EOF
	}
	return nil
}

// lifted adapts any tuple Operator to the batch protocol by copying.
type lifted struct {
	op Operator
}

// Lift adapts op to the batch protocol. Each NextBatch copies up to the
// batch's capacity of tuples out of op.Next — correct for any operator, at
// one tuple copy of overhead; prefer native NextBatch implementations where
// the profile matters.
func Lift(op Operator) BatchOperator { return &lifted{op: op} }

func (l *lifted) Schema() *tuple.Schema    { return l.op.Schema() }
func (l *lifted) Open() error              { return l.op.Open() }
func (l *lifted) Close() error             { return l.op.Close() }
func (l *lifted) NextBatch(b *Batch) error { return FillBatch(l.op, b) }

// lowered adapts a BatchOperator back to tuple-at-a-time.
type lowered struct {
	bop  BatchOperator
	size int
	b    *Batch
	pos  int
}

// Lower adapts bop back to the tuple protocol, fetching batches of size
// tuples (DefaultBatchSize when <= 0) and serving them one Next at a time.
// Returned tuples alias the current batch and stay valid until Next crosses
// a batch boundary — a superset of the Operator contract.
func Lower(bop BatchOperator, size int) Operator {
	if size <= 0 {
		size = DefaultBatchSize
	}
	return &lowered{bop: bop, size: size}
}

func (l *lowered) Schema() *tuple.Schema { return l.bop.Schema() }

func (l *lowered) Open() error {
	if l.b != nil {
		l.b.Release()
		l.b = nil
	}
	l.pos = 0
	return l.bop.Open()
}

func (l *lowered) Next() (tuple.Tuple, error) {
	for {
		if l.b != nil && l.pos < l.b.Len() {
			t := l.b.Tuple(l.pos)
			l.pos++
			return t, nil
		}
		if l.b == nil {
			l.b = NewBatch(l.bop.Schema(), l.size)
		}
		if err := l.bop.NextBatch(l.b); err != nil {
			return nil, err
		}
		l.pos = 0
	}
}

func (l *lowered) Close() error {
	if l.b != nil {
		l.b.Release()
		l.b = nil
	}
	return l.bop.Close()
}

// opaque hides any native batch capability of the wrapped operator, forcing
// consumers onto the tuple-at-a-time protocol. This is the ablation and
// testing lever: batch-vs-tuple comparisons wrap one side in Opaque.
type opaque struct {
	Operator
}

// Opaque returns op stripped of its batch capability.
func Opaque(op Operator) Operator { return opaque{op} }

// NextBatch implements BatchOperator natively for MemScan: tuples are copied
// into the arena in slices of the batch capacity, eliminating the per-tuple
// interface dispatch of Next.
func (m *MemScan) NextBatch(b *Batch) error {
	if !m.open {
		return errNotOpen("MemScan")
	}
	if m.pos >= len(m.tuples) {
		return io.EOF
	}
	b.Reset()
	for m.pos < len(m.tuples) && !b.Full() {
		b.Append(m.tuples[m.pos])
		m.pos++
	}
	return nil
}

// NextBatch implements BatchOperator for Filter: it consumes whole input
// batches and compacts the qualifying tuples into the output batch. An
// all-filtered input batch does not surface as an empty output; the loop
// pulls again until at least one tuple passes or the input ends.
func (f *Filter) NextBatch(b *Batch) error {
	in, native := NativeBatch(f.input)
	for {
		if native {
			if f.scratch == nil {
				f.scratch = NewBatch(f.input.Schema(), b.Cap())
			}
			if err := in.NextBatch(f.scratch); err != nil {
				return err
			}
			b.Reset()
			for i, n := 0, f.scratch.Len(); i < n; i++ {
				if t := f.scratch.Tuple(i); f.pred(t) {
					b.Append(t)
				}
			}
		} else {
			b.Reset()
			for !b.Full() {
				t, err := f.input.Next()
				if err == io.EOF {
					if b.Len() == 0 {
						return io.EOF
					}
					return nil
				}
				if err != nil {
					return err
				}
				if f.pred(t) {
					b.Append(t)
				}
			}
		}
		if b.Len() > 0 {
			return nil
		}
	}
}

// NextBatch implements BatchOperator for Project: each input tuple's
// projection is written straight into the output arena, one AppendSlot per
// tuple, with column offsets resolved once per batch instead of once per
// tuple.
func (p *Project) NextBatch(b *Batch) error {
	in, native := NativeBatch(p.input)
	if !native {
		if err := FillBatchProjected(p.input, b, p.cols); err != nil {
			return err
		}
		return nil
	}
	if p.scratch == nil {
		p.scratch = NewBatch(p.input.Schema(), b.Cap())
	}
	if err := in.NextBatch(p.scratch); err != nil {
		return err
	}
	is := p.input.Schema()
	b.Reset()
	for i, n := 0, p.scratch.Len(); i < n; i++ {
		is.ProjectInto(b.AppendSlot(), p.scratch.Tuple(i), p.cols)
	}
	return nil
}

// FillBatchProjected fills b with the cols projection of op's tuples,
// the per-tuple fallback of Project.NextBatch.
func FillBatchProjected(op Operator, b *Batch, cols []int) error {
	s := op.Schema()
	b.Reset()
	for !b.Full() {
		t, err := op.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		s.ProjectInto(b.AppendSlot(), t, cols)
	}
	if b.Len() == 0 {
		return io.EOF
	}
	return nil
}
