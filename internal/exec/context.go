package exec

import (
	"context"
	"fmt"
	"runtime/debug"

	"repro/internal/tuple"
)

// ContextScan injects cooperative cancellation into a demand-driven
// pipeline: it passes its input through unchanged but fails with ctx.Err()
// once the context is cancelled or times out. Because every operator pulls
// its tuples (directly or transitively) from the plan's leaves, wrapping the
// leaf scans makes the whole operator tree cancellable without changing the
// Operator interface: the error unwinds through Next like any I/O fault, and
// each operator's existing cleanup path releases its resources.
type ContextScan struct {
	ctx   context.Context
	input Operator
}

var _ Operator = (*ContextScan)(nil)

// NewContextScan wraps input so the stream fails once ctx is done.
func NewContextScan(ctx context.Context, input Operator) *ContextScan {
	return &ContextScan{ctx: ctx, input: input}
}

// Schema implements Operator.
func (c *ContextScan) Schema() *tuple.Schema { return c.input.Schema() }

// Open implements Operator.
func (c *ContextScan) Open() error {
	if err := c.ctx.Err(); err != nil {
		return err
	}
	return c.input.Open()
}

// Next implements Operator. The per-tuple ctx.Err() check is an atomic load;
// its cost is negligible next to tuple processing.
func (c *ContextScan) Next() (tuple.Tuple, error) {
	if err := c.ctx.Err(); err != nil {
		return nil, err
	}
	return c.input.Next()
}

// Close implements Operator. Close always reaches the input, cancelled or
// not — cancellation must never leak resources.
func (c *ContextScan) Close() error { return c.input.Close() }

// PanicError is a panic converted to an error at an operator-tree boundary
// (Drain, Collect, ForEach, a parallel worker). The original panic value and
// stack are preserved for diagnosis; callers treat it like any other query
// error.
type PanicError struct {
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("exec: operator panicked: %v", e.Value)
}

// RecoverPanic converts an in-flight panic into a *PanicError stored in
// *errp. Use it as `defer exec.RecoverPanic(&err)` at any boundary where a
// goroutine or public entry point runs an operator tree: a panicking
// operator then reports a query error instead of crashing the process.
func RecoverPanic(errp *error) {
	if r := recover(); r != nil {
		*errp = &PanicError{Value: r, Stack: debug.Stack()}
	}
}
