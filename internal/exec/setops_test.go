package exec

import (
	"testing"

	"repro/internal/tuple"
)

func TestCrossProduct(t *testing.T) {
	ls := tuple.NewSchema(tuple.Int64Field("a"))
	rs := tuple.NewSchema(tuple.Int64Field("b"))
	left := NewMemScan(ls, []tuple.Tuple{ls.MustMake(1), ls.MustMake(2)})
	right := NewMemScan(rs, []tuple.Tuple{rs.MustMake(10), rs.MustMake(20), rs.MustMake(30)})
	cp := NewCrossProduct(left, right)
	ts, err := Collect(cp)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 6 {
		t.Fatalf("product has %d tuples, want 6", len(ts))
	}
	s := cp.Schema()
	seen := make(map[[2]int64]bool)
	for _, tp := range ts {
		seen[[2]int64{s.Int64(tp, 0), s.Int64(tp, 1)}] = true
	}
	for _, a := range []int64{1, 2} {
		for _, b := range []int64{10, 20, 30} {
			if !seen[[2]int64{a, b}] {
				t.Errorf("missing pair (%d,%d)", a, b)
			}
		}
	}
}

func TestCrossProductEmptySides(t *testing.T) {
	s := tuple.NewSchema(tuple.Int64Field("a"))
	one := []tuple.Tuple{s.MustMake(1)}
	if got := mustCollect(t, NewCrossProduct(NewMemScan(s, nil), NewMemScan(s, one))); len(got) != 0 {
		t.Errorf("empty left gave %d", len(got))
	}
	if got := mustCollect(t, NewCrossProduct(NewMemScan(s, one), NewMemScan(s, nil))); len(got) != 0 {
		t.Errorf("empty right gave %d", len(got))
	}
}

func mustCollect(t *testing.T, op Operator) []tuple.Tuple {
	t.Helper()
	ts, err := Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestDifference(t *testing.T) {
	s := tuple.NewSchema(tuple.Int64Field("v"))
	mk := func(vals ...int64) []tuple.Tuple {
		out := make([]tuple.Tuple, len(vals))
		for i, v := range vals {
			out[i] = s.MustMake(v)
		}
		return out
	}
	d := NewDifference(
		NewMemScan(s, mk(1, 2, 2, 3, 4)), // left duplicates collapse
		NewMemScan(s, mk(2, 4, 5)),
		nil)
	got := mustCollect(t, d)
	if len(got) != 2 {
		t.Fatalf("difference = %d tuples, want 2", len(got))
	}
	vals := map[int64]bool{}
	for _, tp := range got {
		vals[s.Int64(tp, 0)] = true
	}
	if !vals[1] || !vals[3] {
		t.Errorf("difference = %v", vals)
	}
}

func TestDifferenceCountsWork(t *testing.T) {
	s := tuple.NewSchema(tuple.Int64Field("v"))
	var c Counters
	d := NewDifference(NewMemScan(s, []tuple.Tuple{s.MustMake(1)}),
		NewMemScan(s, []tuple.Tuple{s.MustMake(2)}), &c)
	mustCollect(t, d)
	if c.Hash == 0 {
		t.Error("difference did not fold hash counts")
	}
}

func TestDifferenceWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	a := tuple.NewSchema(tuple.Int64Field("a"))
	b := tuple.NewSchema(tuple.CharField("b", 3))
	NewDifference(NewMemScan(a, nil), NewMemScan(b, nil), nil)
}
