package exec

import (
	"io"
	"math/rand"
	"testing"

	"repro/internal/btree"
	"repro/internal/buffer"
	"repro/internal/disk"
	"repro/internal/storage"
)

func indexedFixture(t *testing.T, n int) (*btree.Tree, *storage.File, []int64) {
	t.Helper()
	pool := buffer.New(1 << 20)
	dev := disk.NewDevice("d", 1024)
	f := storage.NewFile(pool, dev, pairSchema, "r")
	tr, err := btree.New(pool, dev, pairSchema)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Int63n(1 << 30)
		tp := pairSchema.MustMake(keys[i], int64(i))
		rid, err := f.Append(tp)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Insert(tp, rid); err != nil {
			t.Fatal(err)
		}
	}
	return tr, f, keys
}

func TestIndexKeyScanSorted(t *testing.T) {
	tr, _, keys := indexedFixture(t, 500)
	sc := NewIndexKeyScan(tr, pairSchema, nil, nil)
	got := rows(t, sc)
	if len(got) != len(keys) {
		t.Fatalf("scan returned %d keys, want %d", len(got), len(keys))
	}
	for i := 1; i < len(got); i++ {
		if got[i][0] < got[i-1][0] {
			t.Fatalf("index scan out of order at %d", i)
		}
	}
}

func TestIndexKeyScanRange(t *testing.T) {
	pool := buffer.New(1 << 20)
	dev := disk.NewDevice("d", 1024)
	tr, err := btree.New(pool, dev, pairSchema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := tr.Insert(pairSchema.MustMake(int64(i), 0), storage.RID{}); err != nil {
			t.Fatal(err)
		}
	}
	sc := NewIndexKeyScan(tr, pairSchema,
		pairSchema.MustMake(10, 0), pairSchema.MustMake(20, 0))
	got := rows(t, sc)
	if len(got) != 10 || got[0][0] != 10 || got[9][0] != 19 {
		t.Errorf("range scan = %v", got)
	}
}

func TestIndexLookupScanFetchesRecords(t *testing.T) {
	tr, f, keys := indexedFixture(t, 300)
	sc := NewIndexLookupScan(tr, f)
	if err := sc.Open(); err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	count := 0
	var prev int64 = -1
	for {
		tp, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		k := pairSchema.Int64(tp, 0)
		if k < prev {
			t.Fatalf("lookup scan out of key order")
		}
		prev = k
		// Payload must be the original record's position, matching the key.
		pos := pairSchema.Int64(tp, 1)
		if keys[pos] != k {
			t.Fatalf("record payload %d does not match key %d", pos, k)
		}
		count++
	}
	if count != len(keys) {
		t.Errorf("lookup scan returned %d records, want %d", count, len(keys))
	}
	if f.Pool().FixedFrames() != 0 {
		t.Error("lookup scan leaked fixed frames")
	}
}

func TestIndexScansNotOpen(t *testing.T) {
	tr, f, _ := indexedFixture(t, 1)
	if _, err := NewIndexKeyScan(tr, pairSchema, nil, nil).Next(); err == nil {
		t.Error("IndexKeyScan.Next before Open should fail")
	}
	if _, err := NewIndexLookupScan(tr, f).Next(); err == nil {
		t.Error("IndexLookupScan.Next before Open should fail")
	}
}
