// Package rewrite implements the query-optimizer rule the paper's
// conclusion asks for: "it is desirable either to include for-all predicates
// in the query language, or to detect them automatically in a complex
// aggregate expression."
//
// Systems without a division operator express universal quantification as
//
//	SELECT g FROM R SEMIJOIN S ON R.d = S.*
//	GROUP BY g HAVING COUNT(*) = (SELECT COUNT(*) FROM S)
//
// — the §2.2 aggregation encoding. This package models such queries as small
// logical plans, detects the pattern, and rewrites it into a Division node,
// which then compiles to hash-division. §5.2 shows why this matters: "if a
// universal quantification is expressed in terms of an aggregate function
// with preceding join and the query optimizer does not rewrite the query to
// use relational division, the query may be evaluated using an inferior
// strategy."
package rewrite

import (
	"fmt"
	"strings"

	"repro/internal/division"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/tuple"
)

// Node is a logical plan operator.
type Node interface {
	// Schema of the node's output.
	Schema() *tuple.Schema
	// children for generic traversal.
	children() []Node
	// describe renders one line for Explain-style output.
	describe() string
}

// Rel is a base relation: a schema plus a factory for its physical scan, so
// a plan can be compiled (and re-compiled) into executable operators.
type Rel struct {
	Name   string
	schema *tuple.Schema
	scan   func() exec.Operator
}

// NewRel wraps a named relation. scan must return a fresh (re-openable)
// operator on each call.
func NewRel(name string, schema *tuple.Schema, scan func() exec.Operator) *Rel {
	return &Rel{Name: name, schema: schema, scan: scan}
}

// Schema implements Node.
func (r *Rel) Schema() *tuple.Schema { return r.schema }
func (r *Rel) children() []Node      { return nil }
func (r *Rel) describe() string      { return fmt.Sprintf("Rel(%s)", r.Name) }

// SemiJoin keeps the left tuples that match at least one right tuple on the
// key columns.
type SemiJoin struct {
	Left, Right         Node
	LeftCols, RightCols []int
}

// Schema implements Node.
func (j *SemiJoin) Schema() *tuple.Schema { return j.Left.Schema() }
func (j *SemiJoin) children() []Node      { return []Node{j.Left, j.Right} }
func (j *SemiJoin) describe() string {
	return fmt.Sprintf("SemiJoin(on %v=%v)", j.LeftCols, j.RightCols)
}

// GroupCount counts tuples per group of GroupCols; output is the group
// columns plus a count.
type GroupCount struct {
	Input     Node
	GroupCols []int
}

// Schema implements Node.
func (g *GroupCount) Schema() *tuple.Schema {
	return exec.GroupCountSchema(g.Input.Schema(), g.GroupCols)
}
func (g *GroupCount) children() []Node { return []Node{g.Input} }
func (g *GroupCount) describe() string { return fmt.Sprintf("GroupCount(by %v)", g.GroupCols) }

// CountEqCard filters grouped counts to the groups whose count equals the
// cardinality of Of (the correlated scalar subquery COUNT(*) FROM S) and
// projects the count away.
type CountEqCard struct {
	Input Node // grouped counts
	Of    Node // relation whose cardinality is compared
}

// Schema implements Node.
func (c *CountEqCard) Schema() *tuple.Schema {
	in := c.Input.Schema()
	cols := make([]int, in.NumFields()-1)
	for i := range cols {
		cols[i] = i
	}
	return in.Project(cols)
}
func (c *CountEqCard) children() []Node { return []Node{c.Input, c.Of} }
func (c *CountEqCard) describe() string { return "CountEqCard" }

// Division is the algebraic division operator the rewrite produces.
type Division struct {
	Dividend, Divisor Node
	DivisorCols       []int
}

// Schema implements Node.
func (d *Division) Schema() *tuple.Schema {
	return d.Dividend.Schema().Project(d.Dividend.Schema().Complement(d.DivisorCols))
}
func (d *Division) children() []Node { return []Node{d.Dividend, d.Divisor} }
func (d *Division) describe() string { return fmt.Sprintf("Division(on %v)", d.DivisorCols) }

// Format renders the plan tree, one node per line.
func Format(n Node) string {
	var b strings.Builder
	var walk func(Node, int)
	walk = func(n Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.describe())
		b.WriteByte('\n')
		for _, c := range n.children() {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return b.String()
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Rewrite applies the for-all detection rule bottom-up and returns the
// rewritten plan plus whether anything changed.
//
// The detected pattern is
//
//	CountEqCard{ Input: GroupCount{ Input: SemiJoin{L, S}, GroupCols: g },
//	             Of: S }
//
// where S is the SAME divisor subplan in both places, the semi-join matches
// ALL of S's columns, and g is exactly the complement of the join columns —
// i.e. the query counts, per candidate, the distinct divisor matches and
// demands all of them. That is relational division L ÷ S by definition.
func Rewrite(n Node) (Node, bool) {
	changed := false
	var walk func(Node) Node
	walk = func(n Node) Node {
		switch t := n.(type) {
		case *CountEqCard:
			t.Input = walk(t.Input)
			t.Of = walk(t.Of)
			if d, ok := matchForAll(t); ok {
				changed = true
				return d
			}
			return t
		case *GroupCount:
			t.Input = walk(t.Input)
			return t
		case *SemiJoin:
			t.Left = walk(t.Left)
			t.Right = walk(t.Right)
			return t
		case *Division:
			t.Dividend = walk(t.Dividend)
			t.Divisor = walk(t.Divisor)
			return t
		default:
			return n
		}
	}
	out := walk(n)
	return out, changed
}

// matchForAll recognizes the aggregation encoding of division.
func matchForAll(c *CountEqCard) (*Division, bool) {
	g, ok := c.Input.(*GroupCount)
	if !ok {
		return nil, false
	}
	j, ok := g.Input.(*SemiJoin)
	if !ok {
		return nil, false
	}
	// The scalar count must be over the very same divisor subplan.
	if j.Right != c.Of {
		return nil, false
	}
	// The semi-join must match every divisor column, in order.
	if !equalInts(j.RightCols, j.Right.Schema().AllColumns()) {
		return nil, false
	}
	// The grouping columns must be exactly the non-join columns.
	if !equalInts(g.GroupCols, j.Left.Schema().Complement(j.LeftCols)) {
		return nil, false
	}
	return &Division{Dividend: j.Left, Divisor: j.Right, DivisorCols: j.LeftCols}, true
}

// Shape returns a normalized key for the plan: node kinds, base-relation
// names and schemas, and column bindings — everything that determines how
// the plan compiles, and nothing that depends on relation contents. Two
// queries with equal shapes compile to structurally identical plans, so a
// prepared-plan cache keyed on Shape can reuse one Compile across repeat
// traffic. The key is stable across processes (no pointers, no ordering
// dependent on map iteration).
func Shape(n Node) string {
	var b strings.Builder
	writeShape(&b, n)
	return b.String()
}

func writeShape(b *strings.Builder, n Node) {
	switch t := n.(type) {
	case *Rel:
		fmt.Fprintf(b, "rel(%s%s)", t.Name, t.schema)
	case *SemiJoin:
		fmt.Fprintf(b, "semijoin[%v=%v](", t.LeftCols, t.RightCols)
		writeShape(b, t.Left)
		b.WriteByte(',')
		writeShape(b, t.Right)
		b.WriteByte(')')
	case *GroupCount:
		fmt.Fprintf(b, "groupcount[%v](", t.GroupCols)
		writeShape(b, t.Input)
		b.WriteByte(')')
	case *CountEqCard:
		b.WriteString("counteqcard(")
		writeShape(b, t.Input)
		b.WriteByte(',')
		writeShape(b, t.Of)
		b.WriteByte(')')
	case *Division:
		fmt.Fprintf(b, "division[%v](", t.DivisorCols)
		writeShape(b, t.Dividend)
		b.WriteByte(',')
		writeShape(b, t.Divisor)
		b.WriteByte(')')
	default:
		fmt.Fprintf(b, "%T", n)
	}
}

// Compile lowers a logical plan to a physical operator tree. Division nodes
// become hash-division; the un-rewritten aggregate pattern becomes the
// hash-aggregation-with-semi-join plan of §2.2.2 — exactly the two plans the
// paper's §5.2 remark compares. When env carries a Trace, every compiled node
// records into its own span, nested to mirror the plan tree.
//
// Every call bumps the obs.Default counter "rewrite.compiles": a prepared-
// plan cache that claims to skip compilation can be held to it (the server's
// -check gate asserts the counter stays flat across cache hits).
func Compile(n Node, env division.Env) (exec.Operator, error) {
	obs.Default.Counter("rewrite.compiles").Inc()
	return compile(n, env, env.ProfileParent())
}

// nodeSpan keeps the span creation off the untraced path.
func nodeSpan(parent *obs.Span, name, kind string) *obs.Span {
	if parent == nil {
		return nil
	}
	return parent.Child(name, kind)
}

func compile(n Node, env division.Env, parent *obs.Span) (exec.Operator, error) {
	switch t := n.(type) {
	case *Rel:
		op := t.scan()
		var span *obs.Span
		if parent != nil {
			span = parent.Child("scan("+t.Name+")", obs.OpName(op))
		}
		return obs.Instrument(op, span, env.Counters), nil
	case *SemiJoin:
		span := nodeSpan(parent, "semi-join", "HashSemiJoin")
		left, err := compile(t.Left, env, span)
		if err != nil {
			return nil, err
		}
		right, err := compile(t.Right, env, span)
		if err != nil {
			return nil, err
		}
		op := exec.NewHashSemiJoin(left, right, t.LeftCols, t.RightCols, env.Counters)
		return obs.Instrument(op, span, env.Counters), nil
	case *GroupCount:
		span := nodeSpan(parent, "group-count", "HashGroupCount")
		in, err := compile(t.Input, env, span)
		if err != nil {
			return nil, err
		}
		op := exec.NewHashGroupCount(in, t.GroupCols, 0, 0, env.Counters)
		return obs.Instrument(op, span, env.Counters), nil
	case *CountEqCard:
		span := nodeSpan(parent, "count=card", "cardFilter")
		in, err := compile(t.Input, env, span)
		if err != nil {
			return nil, err
		}
		of, err := compile(t.Of, env, span)
		if err != nil {
			return nil, err
		}
		return obs.Instrument(newCardFilter(in, of, env), span, env.Counters), nil
	case *Division:
		span := nodeSpan(parent, "division", "hash-division")
		// The hash-division constructor instruments its own inputs under its
		// phase spans, so the children compile without spans of their own —
		// a second probe on the same stream would double-count its work.
		dividend, err := compile(t.Dividend, env, nil)
		if err != nil {
			return nil, err
		}
		divisor, err := compile(t.Divisor, env, nil)
		if err != nil {
			return nil, err
		}
		env.ProfileSpan = span
		if span == nil {
			env.Trace = nil // keep an untraced subtree from attaching to the root
		}
		op := division.NewHashDivision(division.Spec{
			Dividend:    dividend,
			Divisor:     divisor,
			DivisorCols: t.DivisorCols,
		}, env, division.HashDivisionOptions{})
		return obs.Instrument(op, span, env.Counters), nil
	default:
		return nil, fmt.Errorf("rewrite: cannot compile %T", n)
	}
}

// cardFilter is the physical CountEqCard: scalar-count Of at Open, filter
// groups, drop the count column.
type cardFilter struct {
	input  exec.Operator
	of     exec.Operator
	env    division.Env
	want   int64
	schema *tuple.Schema
	cols   []int
	buf    tuple.Tuple
	opened bool
}

func newCardFilter(input, of exec.Operator, env division.Env) *cardFilter {
	in := input.Schema()
	cols := make([]int, in.NumFields()-1)
	for i := range cols {
		cols[i] = i
	}
	return &cardFilter{input: input, of: of, env: env, schema: in.Project(cols), cols: cols}
}

func (f *cardFilter) Schema() *tuple.Schema { return f.schema }

func (f *cardFilter) Open() error {
	n, err := exec.ScalarCount(f.of)
	if err != nil {
		return err
	}
	f.want = n
	f.buf = f.schema.New()
	if err := f.input.Open(); err != nil {
		return err
	}
	f.opened = true
	return nil
}

func (f *cardFilter) Next() (tuple.Tuple, error) {
	if !f.opened {
		return nil, fmt.Errorf("rewrite: cardFilter.Next before Open")
	}
	in := f.input.Schema()
	countCol := in.NumFields() - 1
	for {
		t, err := f.input.Next()
		if err != nil {
			return nil, err
		}
		if f.env.Counters != nil {
			f.env.Counters.Comp++
		}
		if f.want > 0 && in.Int64(t, countCol) == f.want {
			return in.ProjectInto(f.buf, t, f.cols), nil
		}
	}
}

func (f *cardFilter) Close() error {
	f.opened = false
	return f.input.Close()
}
