package rewrite

import (
	"strings"
	"testing"

	"repro/internal/division"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/workload"
)

// forAllQuery builds the §2.2 aggregation encoding of "students who took all
// courses in S": semi-join, group count, having count = |S|.
func forAllQuery(inst *workload.Instance) (Node, *Rel, *Rel) {
	transcript := NewRel("transcript", workload.TranscriptSchema, func() exec.Operator {
		return exec.NewMemScan(workload.TranscriptSchema, inst.Dividend)
	})
	courses := NewRel("courses", workload.CourseSchema, func() exec.Operator {
		return exec.NewMemScan(workload.CourseSchema, inst.Divisor)
	})
	plan := &CountEqCard{
		Input: &GroupCount{
			Input: &SemiJoin{
				Left:      transcript,
				Right:     courses,
				LeftCols:  []int{1},
				RightCols: []int{0},
			},
			GroupCols: []int{0},
		},
		Of: courses,
	}
	return plan, transcript, courses
}

func noisyInstance(t testing.TB, seed int64) *workload.Instance {
	t.Helper()
	inst, err := workload.Generate(workload.Config{
		DivisorTuples:      12,
		QuotientCandidates: 60,
		FullFraction:       0.4,
		MatchFraction:      0.7,
		NoisePerCandidate:  3,
		Shuffle:            true,
		Seed:               seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestRewriteDetectsForAll(t *testing.T) {
	inst := noisyInstance(t, 1)
	plan, transcript, courses := forAllQuery(inst)
	out, changed := Rewrite(plan)
	if !changed {
		t.Fatal("pattern not detected")
	}
	d, ok := out.(*Division)
	if !ok {
		t.Fatalf("rewritten root is %T, want *Division", out)
	}
	if d.Dividend != transcript || d.Divisor != courses {
		t.Error("division operands are not the original relations")
	}
	if len(d.DivisorCols) != 1 || d.DivisorCols[0] != 1 {
		t.Errorf("DivisorCols = %v", d.DivisorCols)
	}
	if !strings.Contains(Format(out), "Division") {
		t.Errorf("Format missing Division:\n%s", Format(out))
	}
}

func TestRewritePreservesSemantics(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		inst := noisyInstance(t, seed)
		plan, _, _ := forAllQuery(inst)

		original, err := Compile(plan, division.Env{})
		if err != nil {
			t.Fatal(err)
		}
		originalRows, err := exec.Collect(original)
		if err != nil {
			t.Fatal(err)
		}

		rewritten, changed := Rewrite(plan)
		if !changed {
			t.Fatal("no rewrite")
		}
		rw, err := Compile(rewritten, division.Env{})
		if err != nil {
			t.Fatal(err)
		}
		rwRows, err := exec.Collect(rw)
		if err != nil {
			t.Fatal(err)
		}

		qs := rewritten.Schema()
		if !division.EqualTupleSets(qs, originalRows, rwRows) {
			t.Fatalf("seed %d: rewrite changed the result: %d vs %d rows",
				seed, len(originalRows), len(rwRows))
		}
		if len(rwRows) != len(inst.QuotientIDs) {
			t.Fatalf("seed %d: result %d rows, ground truth %d", seed, len(rwRows), len(inst.QuotientIDs))
		}
	}
}

// TestRewriteSavesWork is the §5.2 remark quantified: the division plan does
// strictly less hashing/comparison work than the aggregate-with-semi-join
// plan it replaces.
func TestRewriteSavesWork(t *testing.T) {
	inst, err := workload.Generate(workload.PaperCase(50, 400, 3))
	if err != nil {
		t.Fatal(err)
	}
	plan, _, _ := forAllQuery(inst)

	costOf := func(n Node) float64 {
		var c exec.Counters
		op, err := Compile(n, division.Env{Counters: &c})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := exec.Drain(op); err != nil {
			t.Fatal(err)
		}
		return c.CostMS(0.03, 0.03, 0.4, 0.003)
	}
	before := costOf(plan)
	rewritten, changed := Rewrite(plan)
	if !changed {
		t.Fatal("no rewrite")
	}
	after := costOf(rewritten)
	if after >= before {
		t.Errorf("rewrite did not save work: %.1f ms before, %.1f ms after", before, after)
	}
}

func TestRewriteRejectsNonMatchingPatterns(t *testing.T) {
	inst := noisyInstance(t, 9)
	transcript := NewRel("transcript", workload.TranscriptSchema, func() exec.Operator {
		return exec.NewMemScan(workload.TranscriptSchema, inst.Dividend)
	})
	courses := NewRel("courses", workload.CourseSchema, func() exec.Operator {
		return exec.NewMemScan(workload.CourseSchema, inst.Divisor)
	})
	otherCourses := NewRel("courses2", workload.CourseSchema, func() exec.Operator {
		return exec.NewMemScan(workload.CourseSchema, inst.Divisor)
	})

	semi := func() *SemiJoin {
		return &SemiJoin{Left: transcript, Right: courses, LeftCols: []int{1}, RightCols: []int{0}}
	}

	cases := map[string]Node{
		// Count compared against a DIFFERENT relation's cardinality.
		"different scalar relation": &CountEqCard{
			Input: &GroupCount{Input: semi(), GroupCols: []int{0}},
			Of:    otherCourses,
		},
		// Grouping on the join column instead of its complement.
		"wrong group columns": &CountEqCard{
			Input: &GroupCount{Input: semi(), GroupCols: []int{1}},
			Of:    courses,
		},
		// No semi-join underneath (the unsafe no-join form).
		"no semi-join": &CountEqCard{
			Input: &GroupCount{Input: transcript, GroupCols: []int{0}},
			Of:    courses,
		},
	}
	for name, plan := range cases {
		if _, changed := Rewrite(plan); changed {
			t.Errorf("%s: pattern should NOT rewrite", name)
		}
	}
}

func TestCompileErrorsOnUnknownNode(t *testing.T) {
	if _, err := Compile(nil, division.Env{}); err == nil {
		t.Error("nil node compiled")
	}
}

func TestCardFilterEmptyDivisor(t *testing.T) {
	empty := &workload.Instance{Dividend: nil, Divisor: nil}
	inst := noisyInstance(t, 4)
	empty.Dividend = inst.Dividend
	plan, _, _ := forAllQuery(empty)
	op, err := Compile(plan, division.Env{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := exec.Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("empty divisor produced %d rows", n)
	}
}

func TestFormatTree(t *testing.T) {
	inst := noisyInstance(t, 5)
	plan, _, _ := forAllQuery(inst)
	s := Format(plan)
	for _, want := range []string{"CountEqCard", "GroupCount", "SemiJoin", "Rel(transcript)", "Rel(courses)"} {
		if !strings.Contains(s, want) {
			t.Errorf("Format missing %q:\n%s", want, s)
		}
	}
}

func BenchmarkRewrittenVsOriginal(b *testing.B) {
	inst, err := workload.Generate(workload.PaperCase(50, 400, 3))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("aggregate-plan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			plan, _, _ := forAllQuery(inst)
			op, err := Compile(plan, division.Env{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := exec.Drain(op); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("division-plan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			plan, _, _ := forAllQuery(inst)
			rewritten, _ := Rewrite(plan)
			op, err := Compile(rewritten, division.Env{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := exec.Drain(op); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func TestShapeStableAndContentIndependent(t *testing.T) {
	// Same tables, same columns, different contents: one shape.
	planA, _, _ := forAllQuery(noisyInstance(t, 1))
	planB, _, _ := forAllQuery(noisyInstance(t, 2))
	if Shape(planA) != Shape(planB) {
		t.Errorf("shape depends on relation contents:\nA: %s\nB: %s", Shape(planA), Shape(planB))
	}
	// The rewritten plan has a different shape than the aggregation encoding.
	rewritten, changed := Rewrite(planB)
	if !changed {
		t.Fatal("pattern not detected")
	}
	if Shape(planA) == Shape(rewritten) {
		t.Error("rewritten plan shares the aggregation encoding's shape")
	}
	// Shape must be deterministic.
	if Shape(rewritten) != Shape(rewritten) {
		t.Error("shape not deterministic")
	}
	// A different relation name is a different shape.
	inst := noisyInstance(t, 1)
	other := NewRel("transcript2", workload.TranscriptSchema, func() exec.Operator {
		return exec.NewMemScan(workload.TranscriptSchema, inst.Dividend)
	})
	planC, _, _ := forAllQuery(inst)
	planC.(*CountEqCard).Input.(*GroupCount).Input.(*SemiJoin).Left = other
	if Shape(planA) == Shape(planC) {
		t.Error("shape ignores base relation names")
	}
}

func TestCompileBumpsObsCounter(t *testing.T) {
	inst := noisyInstance(t, 3)
	plan, _, _ := forAllQuery(inst)
	before := obs.Default.Get("rewrite.compiles")
	op, err := Compile(plan, division.Env{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Drain(op); err != nil {
		t.Fatal(err)
	}
	if got := obs.Default.Get("rewrite.compiles"); got != before+1 {
		t.Errorf("rewrite.compiles advanced by %d, want 1", got-before)
	}
}
