package tuple

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strings"
)

// Tuple is a flat, fixed-width record whose layout is given by a Schema.
// Tuples are plain byte slices so operators can pass around addresses into
// the buffer pool without copying, mirroring the paper's substrate where
// "scans give memory addresses to records fixed in the buffer pool".
type Tuple []byte

// New allocates a zeroed tuple for the schema.
func (s *Schema) New() Tuple { return make(Tuple, s.width) }

// Int64 reads column i of t as an int64.
func (s *Schema) Int64(t Tuple, i int) int64 {
	off := s.offsets[i]
	return int64(binary.LittleEndian.Uint64(t[off : off+8]))
}

// SetInt64 writes v into column i of t.
func (s *Schema) SetInt64(t Tuple, i int, v int64) {
	off := s.offsets[i]
	binary.LittleEndian.PutUint64(t[off:off+8], uint64(v))
}

// Char reads column i of t as a string, with zero padding stripped.
func (s *Schema) Char(t Tuple, i int) string {
	off := s.offsets[i]
	raw := t[off : off+s.fields[i].Width]
	if n := bytes.IndexByte(raw, 0); n >= 0 {
		raw = raw[:n]
	}
	return string(raw)
}

// SetChar writes v into column i of t, truncating to the field width and
// zero-padding the remainder.
func (s *Schema) SetChar(t Tuple, i int, v string) {
	off := s.offsets[i]
	w := s.fields[i].Width
	dst := t[off : off+w]
	n := copy(dst, v)
	for j := n; j < w; j++ {
		dst[j] = 0
	}
}

// Make builds a tuple from one Go value per column: int/int64 for KindInt64,
// string for KindChar.
func (s *Schema) Make(values ...any) (Tuple, error) {
	if len(values) != len(s.fields) {
		return nil, fmt.Errorf("tuple: schema %s has %d fields, got %d values", s, len(s.fields), len(values))
	}
	t := s.New()
	for i, v := range values {
		switch s.fields[i].Kind {
		case KindInt64:
			switch x := v.(type) {
			case int:
				s.SetInt64(t, i, int64(x))
			case int64:
				s.SetInt64(t, i, x)
			case uint64:
				s.SetInt64(t, i, int64(x))
			default:
				return nil, fmt.Errorf("tuple: field %q wants an integer, got %T", s.fields[i].Name, v)
			}
		case KindChar:
			x, ok := v.(string)
			if !ok {
				return nil, fmt.Errorf("tuple: field %q wants a string, got %T", s.fields[i].Name, v)
			}
			if len(x) > s.fields[i].Width {
				return nil, fmt.Errorf("tuple: value %q overflows CHAR(%d) field %q", x, s.fields[i].Width, s.fields[i].Name)
			}
			s.SetChar(t, i, x)
		}
	}
	return t, nil
}

// MustMake is Make for program constants; it panics on error.
func (s *Schema) MustMake(values ...any) Tuple {
	t, err := s.Make(values...)
	if err != nil {
		panic(err)
	}
	return t
}

// Row converts a tuple back into one Go value per column.
func (s *Schema) Row(t Tuple) []any {
	row := make([]any, len(s.fields))
	for i, f := range s.fields {
		switch f.Kind {
		case KindInt64:
			row[i] = s.Int64(t, i)
		case KindChar:
			row[i] = s.Char(t, i)
		}
	}
	return row
}

// Format renders a tuple as "(v1, v2, ...)" for diagnostics and examples.
func (s *Schema) Format(t Tuple) string {
	var b strings.Builder
	b.WriteByte('(')
	for i, f := range s.fields {
		if i > 0 {
			b.WriteString(", ")
		}
		switch f.Kind {
		case KindInt64:
			fmt.Fprintf(&b, "%d", s.Int64(t, i))
		case KindChar:
			b.WriteString(s.Char(t, i))
		}
	}
	b.WriteByte(')')
	return b.String()
}

// Clone returns a copy of t that does not alias the original storage. Needed
// whenever a tuple must outlive the buffer page it was read from.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// ProjectTuple copies the listed columns of t into a fresh tuple laid out by
// s.Project(cols).
func (s *Schema) ProjectTuple(t Tuple, cols []int) Tuple {
	width := 0
	for _, c := range cols {
		width += s.fields[c].Width
	}
	out := make(Tuple, width)
	off := 0
	for _, c := range cols {
		w := s.fields[c].Width
		copy(out[off:off+w], t[s.offsets[c]:s.offsets[c]+w])
		off += w
	}
	return out
}

// ProjectInto is ProjectTuple writing into caller-provided storage, which
// must be at least as wide as the projection. It returns the filled prefix.
func (s *Schema) ProjectInto(dst, t Tuple, cols []int) Tuple {
	off := 0
	for _, c := range cols {
		w := s.fields[c].Width
		copy(dst[off:off+w], t[s.offsets[c]:s.offsets[c]+w])
		off += w
	}
	return dst[:off]
}

// ConcatTuples joins a and b into one tuple laid out by s.Concat(other).
func ConcatTuples(a, b Tuple) Tuple {
	out := make(Tuple, len(a)+len(b))
	copy(out, a)
	copy(out[len(a):], b)
	return out
}

// Compare orders t1 and t2 by the listed columns: typed comparison for
// integers, bytewise for fixed chars. It returns -1, 0, or +1.
func (s *Schema) Compare(t1, t2 Tuple, cols []int) int {
	for _, c := range cols {
		f := s.fields[c]
		off := s.offsets[c]
		switch f.Kind {
		case KindInt64:
			a := int64(binary.LittleEndian.Uint64(t1[off : off+8]))
			b := int64(binary.LittleEndian.Uint64(t2[off : off+8]))
			switch {
			case a < b:
				return -1
			case a > b:
				return 1
			}
		case KindChar:
			if c := bytes.Compare(t1[off:off+f.Width], t2[off:off+f.Width]); c != 0 {
				return c
			}
		}
	}
	return 0
}

// CompareFunc returns a comparator specialized to the listed columns, with
// offsets and kinds resolved once — the paper's substrate does the same:
// "all functions on data records, e.g., comparison and hashing, are compiled
// prior to execution and passed to the processing algorithms by means of
// pointers to the function entry points" (§5.1). The single-int64-key case,
// which dominates the experiments, gets a branch-free fast path.
func (s *Schema) CompareFunc(cols []int) func(t1, t2 Tuple) int {
	if len(cols) == 1 && s.fields[cols[0]].Kind == KindInt64 {
		off := s.offsets[cols[0]]
		return func(t1, t2 Tuple) int {
			a := int64(binary.LittleEndian.Uint64(t1[off : off+8]))
			b := int64(binary.LittleEndian.Uint64(t2[off : off+8]))
			switch {
			case a < b:
				return -1
			case a > b:
				return 1
			default:
				return 0
			}
		}
	}
	type ref struct {
		kind  Kind
		off   int
		width int
	}
	refs := make([]ref, len(cols))
	for i, c := range cols {
		refs[i] = ref{kind: s.fields[c].Kind, off: s.offsets[c], width: s.fields[c].Width}
	}
	return func(t1, t2 Tuple) int {
		for _, r := range refs {
			switch r.kind {
			case KindInt64:
				a := int64(binary.LittleEndian.Uint64(t1[r.off : r.off+8]))
				b := int64(binary.LittleEndian.Uint64(t2[r.off : r.off+8]))
				switch {
				case a < b:
					return -1
				case a > b:
					return 1
				}
			case KindChar:
				if c := bytes.Compare(t1[r.off:r.off+r.width], t2[r.off:r.off+r.width]); c != 0 {
					return c
				}
			}
		}
		return 0
	}
}

// HashFunc returns a hash function specialized to the listed columns
// (offsets resolved once), consistent with Hash: the returned values are
// bit-identical to Hash(t, cols) for every input. The common single
// 8-byte-column projection (an int64 key) gets an unrolled kernel — one
// word load and eight xor/multiply steps, no per-byte bounds checks — which
// is what the batch execution path hoists out of its per-tuple loops.
func (s *Schema) HashFunc(cols []int) func(t Tuple) uint64 {
	type span struct{ off, end int }
	spans := make([]span, len(cols))
	for i, c := range cols {
		spans[i] = span{off: s.offsets[c], end: s.offsets[c] + s.fields[c].Width}
	}
	if len(spans) == 1 && spans[0].end-spans[0].off == 8 {
		off := spans[0].off
		return func(t Tuple) uint64 {
			return HashUint64LE(binary.LittleEndian.Uint64(t[off:]))
		}
	}
	return func(t Tuple) uint64 {
		h := uint64(fnvOffset64)
		for _, sp := range spans {
			for _, b := range t[sp.off:sp.end] {
				h ^= uint64(b)
				h *= fnvPrime64
			}
		}
		return h
	}
}

// HashUint64LE returns the FNV-1a hash of the eight little-endian bytes of
// x — bit-identical to Hash over a single 8-byte column holding those bytes,
// unrolled so hot probe loops pay no per-byte bounds checks.
func HashUint64LE(x uint64) uint64 {
	h := uint64(fnvOffset64)
	h = (h ^ (x & 0xff)) * fnvPrime64
	h = (h ^ (x >> 8 & 0xff)) * fnvPrime64
	h = (h ^ (x >> 16 & 0xff)) * fnvPrime64
	h = (h ^ (x >> 24 & 0xff)) * fnvPrime64
	h = (h ^ (x >> 32 & 0xff)) * fnvPrime64
	h = (h ^ (x >> 40 & 0xff)) * fnvPrime64
	h = (h ^ (x >> 48 & 0xff)) * fnvPrime64
	h = (h ^ (x >> 56)) * fnvPrime64
	return h
}

// EqualProjectedFunc returns an equality predicate specialized to the listed
// columns, equivalent to EqualProjected(t, cols, p) for a p laid out by
// s.Project(cols). Single 8-byte-column projections compare as one word
// load each instead of a bytes.Equal call; batch kernels hoist the
// compilation out of their probe loops.
func (s *Schema) EqualProjectedFunc(cols []int) func(t, p Tuple) bool {
	type span struct{ off, width, poff int }
	spans := make([]span, len(cols))
	poff := 0
	for i, c := range cols {
		spans[i] = span{off: s.offsets[c], width: s.fields[c].Width, poff: poff}
		poff += s.fields[c].Width
	}
	if len(spans) == 1 && spans[0].width == 8 {
		off := spans[0].off
		return func(t, p Tuple) bool {
			return binary.LittleEndian.Uint64(t[off:]) == binary.LittleEndian.Uint64(p)
		}
	}
	return func(t, p Tuple) bool {
		for _, sp := range spans {
			if !bytes.Equal(t[sp.off:sp.off+sp.width], p[sp.poff:sp.poff+sp.width]) {
				return false
			}
		}
		return true
	}
}

// CompareAll orders two tuples over every column.
func (s *Schema) CompareAll(t1, t2 Tuple) int {
	return s.Compare(t1, t2, s.AllColumns())
}

// EqualOn reports whether t1 and t2 agree on the listed columns.
func (s *Schema) EqualOn(t1, t2 Tuple, cols []int) bool {
	for _, c := range cols {
		off := s.offsets[c]
		w := s.fields[c].Width
		if !bytes.Equal(t1[off:off+w], t2[off:off+w]) {
			return false
		}
	}
	return true
}

// EqualProjected compares the cols projection of t (schema s) against an
// already-projected tuple p (schema s.Project(cols)).
func (s *Schema) EqualProjected(t Tuple, cols []int, p Tuple) bool {
	off := 0
	for _, c := range cols {
		w := s.fields[c].Width
		if !bytes.Equal(t[s.offsets[c]:s.offsets[c]+w], p[off:off+w]) {
			return false
		}
		off += w
	}
	return true
}

// CompareCross orders the cols1 projection of t1 (schema s1) against the
// cols2 projection of t2 (schema s2). The projections must be
// kind/width-compatible column by column; merge joins use this to compare
// join keys across differently-shaped inputs.
func CompareCross(s1 *Schema, t1 Tuple, cols1 []int, s2 *Schema, t2 Tuple, cols2 []int) int {
	if len(cols1) != len(cols2) {
		panic(fmt.Sprintf("tuple: CompareCross key arity mismatch %d vs %d", len(cols1), len(cols2)))
	}
	for i := range cols1 {
		c1, c2 := cols1[i], cols2[i]
		f1, f2 := s1.fields[c1], s2.fields[c2]
		if f1.Kind != f2.Kind || f1.Width != f2.Width {
			panic(fmt.Sprintf("tuple: CompareCross column %d incompatible: %v vs %v", i, f1, f2))
		}
		o1, o2 := s1.offsets[c1], s2.offsets[c2]
		switch f1.Kind {
		case KindInt64:
			a := int64(binary.LittleEndian.Uint64(t1[o1 : o1+8]))
			b := int64(binary.LittleEndian.Uint64(t2[o2 : o2+8]))
			switch {
			case a < b:
				return -1
			case a > b:
				return 1
			}
		case KindChar:
			if c := bytes.Compare(t1[o1:o1+f1.Width], t2[o2:o2+f2.Width]); c != 0 {
				return c
			}
		}
	}
	return 0
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Hash computes an FNV-1a hash over the listed columns of t. This is the
// "calculation of a hash value from a tuple" the cost model charges Hash for.
func (s *Schema) Hash(t Tuple, cols []int) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range cols {
		off := s.offsets[c]
		for _, b := range t[off : off+s.fields[c].Width] {
			h ^= uint64(b)
			h *= fnvPrime64
		}
	}
	return h
}

// HashAll hashes every column of t.
func (s *Schema) HashAll(t Tuple) uint64 {
	return s.Hash(t, s.AllColumns())
}

// HashBytes hashes a raw already-projected tuple (no schema needed because
// projection produced a contiguous record).
func HashBytes(t Tuple) uint64 {
	h := uint64(fnvOffset64)
	for _, b := range t {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	return h
}
