package tuple

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func transcriptSchema() *Schema {
	return NewSchema(Int64Field("student_id"), Int64Field("course_no"))
}

func TestSchemaLayout(t *testing.T) {
	s := NewSchema(Int64Field("a"), CharField("b", 12), Int64Field("c"))
	if got := s.Width(); got != 28 {
		t.Fatalf("Width() = %d, want 28", got)
	}
	if got := s.Offset(0); got != 0 {
		t.Errorf("Offset(0) = %d, want 0", got)
	}
	if got := s.Offset(1); got != 8 {
		t.Errorf("Offset(1) = %d, want 8", got)
	}
	if got := s.Offset(2); got != 20 {
		t.Errorf("Offset(2) = %d, want 20", got)
	}
	if got := s.NumFields(); got != 3 {
		t.Errorf("NumFields() = %d, want 3", got)
	}
	if got := s.IndexOf("b"); got != 1 {
		t.Errorf("IndexOf(b) = %d, want 1", got)
	}
	if got := s.IndexOf("zzz"); got != -1 {
		t.Errorf("IndexOf(zzz) = %d, want -1", got)
	}
	want := "(a INT64, b CHAR(12), c INT64)"
	if got := s.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestSchemaPanicsOnBadField(t *testing.T) {
	for name, fields := range map[string][]Field{
		"bad int width": {{Name: "x", Kind: KindInt64, Width: 4}},
		"zero char":     {{Name: "x", Kind: KindChar, Width: 0}},
		"negative char": {{Name: "x", Kind: KindChar, Width: -3}},
		"unknown kind":  {{Name: "x", Kind: Kind(99), Width: 8}},
	} {
		fields := fields
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("NewSchema did not panic")
				}
			}()
			NewSchema(fields...)
		})
	}
}

func TestMakeAndAccessors(t *testing.T) {
	s := NewSchema(Int64Field("id"), CharField("name", 8))
	tp, err := s.Make(42, "Ann")
	if err != nil {
		t.Fatalf("Make: %v", err)
	}
	if got := s.Int64(tp, 0); got != 42 {
		t.Errorf("Int64 = %d, want 42", got)
	}
	if got := s.Char(tp, 1); got != "Ann" {
		t.Errorf("Char = %q, want Ann", got)
	}
	if got := s.Format(tp); got != "(42, Ann)" {
		t.Errorf("Format = %q", got)
	}
	row := s.Row(tp)
	if row[0].(int64) != 42 || row[1].(string) != "Ann" {
		t.Errorf("Row = %v", row)
	}
}

func TestMakeErrors(t *testing.T) {
	s := NewSchema(Int64Field("id"), CharField("name", 4))
	if _, err := s.Make(1); err == nil {
		t.Error("Make with wrong arity should fail")
	}
	if _, err := s.Make("x", "y"); err == nil {
		t.Error("Make with string for int should fail")
	}
	if _, err := s.Make(1, 2); err == nil {
		t.Error("Make with int for char should fail")
	}
	if _, err := s.Make(1, "toolongvalue"); err == nil {
		t.Error("Make with overflowing char should fail")
	}
}

func TestSetOverwritesPadding(t *testing.T) {
	s := NewSchema(CharField("name", 8))
	tp := s.MustMake("Barbara_")
	s.SetChar(tp, 0, "Al")
	if got := s.Char(tp, 0); got != "Al" {
		t.Errorf("Char after overwrite = %q, want Al", got)
	}
}

func TestCompareAndEqual(t *testing.T) {
	s := transcriptSchema()
	a := s.MustMake(1, 10)
	b := s.MustMake(1, 20)
	c := s.MustMake(2, 10)

	if got := s.Compare(a, b, []int{0}); got != 0 {
		t.Errorf("Compare on col 0 = %d, want 0", got)
	}
	if got := s.Compare(a, b, []int{1}); got != -1 {
		t.Errorf("Compare on col 1 = %d, want -1", got)
	}
	if got := s.Compare(c, a, []int{0, 1}); got != 1 {
		t.Errorf("Compare = %d, want 1", got)
	}
	if got := s.CompareAll(a, a.Clone()); got != 0 {
		t.Errorf("CompareAll clone = %d, want 0", got)
	}
	if !s.EqualOn(a, b, []int{0}) {
		t.Error("EqualOn col 0 should hold")
	}
	if s.EqualOn(a, c, []int{0}) {
		t.Error("EqualOn col 0 should not hold for different students")
	}
}

func TestCompareNegativeInts(t *testing.T) {
	s := NewSchema(Int64Field("v"))
	neg := s.MustMake(-5)
	pos := s.MustMake(3)
	if got := s.Compare(neg, pos, []int{0}); got != -1 {
		t.Errorf("Compare(-5, 3) = %d, want -1 (typed, not bytewise)", got)
	}
}

func TestProjection(t *testing.T) {
	s := NewSchema(Int64Field("student"), Int64Field("course"), CharField("grade", 2))
	tp := s.MustMake(7, 101, "A")

	p := s.ProjectTuple(tp, []int{0})
	ps := s.Project([]int{0})
	if got := ps.Int64(p, 0); got != 7 {
		t.Errorf("projected value = %d, want 7", got)
	}
	if len(p) != 8 {
		t.Errorf("projected width = %d, want 8", len(p))
	}

	// Reordering projection.
	q := s.ProjectTuple(tp, []int{2, 0})
	qs := s.Project([]int{2, 0})
	if qs.Char(q, 0) != "A" || qs.Int64(q, 1) != 7 {
		t.Errorf("reordered projection = %s", qs.Format(q))
	}

	if !s.EqualProjected(tp, []int{0}, p) {
		t.Error("EqualProjected should hold for own projection")
	}
	other := ps.MustMake(8)
	if s.EqualProjected(tp, []int{0}, other) {
		t.Error("EqualProjected should fail for different key")
	}

	var buf [32]byte
	got := s.ProjectInto(buf[:], tp, []int{1})
	if ns := s.Project([]int{1}); ns.Int64(got, 0) != 101 {
		t.Errorf("ProjectInto = %v", got)
	}
}

func TestComplement(t *testing.T) {
	s := NewSchema(Int64Field("a"), Int64Field("b"), Int64Field("c"))
	got := s.Complement([]int{1})
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Complement([1]) = %v, want [0 2]", got)
	}
	if got := s.Complement(nil); len(got) != 3 {
		t.Errorf("Complement(nil) = %v", got)
	}
}

func TestConcat(t *testing.T) {
	a := NewSchema(Int64Field("x"))
	b := NewSchema(CharField("y", 4))
	c := a.Concat(b)
	if c.Width() != 12 || c.NumFields() != 2 {
		t.Fatalf("Concat schema wrong: %s", c)
	}
	ct := ConcatTuples(a.MustMake(5), b.MustMake("hi"))
	if c.Int64(ct, 0) != 5 || c.Char(ct, 1) != "hi" {
		t.Errorf("ConcatTuples = %s", c.Format(ct))
	}
}

func TestSchemaEqual(t *testing.T) {
	a := NewSchema(Int64Field("x"), CharField("y", 4))
	b := NewSchema(Int64Field("x"), CharField("y", 4))
	c := NewSchema(Int64Field("x"), CharField("z", 4))
	if !a.Equal(b) {
		t.Error("identical schemas should be Equal")
	}
	if a.Equal(c) {
		t.Error("schemas with different names should differ")
	}
	if a.Equal(NewSchema(Int64Field("x"))) {
		t.Error("schemas with different arity should differ")
	}
}

func TestHashConsistency(t *testing.T) {
	s := transcriptSchema()
	a := s.MustMake(1, 10)
	b := s.MustMake(1, 10)
	c := s.MustMake(1, 11)
	if s.HashAll(a) != s.HashAll(b) {
		t.Error("equal tuples must hash equally")
	}
	if s.HashAll(a) == s.HashAll(c) {
		t.Error("hash collision between distinct small tuples is suspicious")
	}
	// Hash over a projection must equal HashBytes of the projected tuple.
	p := s.ProjectTuple(a, []int{1})
	if s.Hash(a, []int{1}) != HashBytes(p) {
		t.Error("Hash(cols) must match HashBytes of projection")
	}
}

func TestHashQuick(t *testing.T) {
	s := transcriptSchema()
	f := func(x, y int64) bool {
		t1 := s.MustMake(x, y)
		t2 := s.MustMake(x, y)
		return s.HashAll(t1) == s.HashAll(t2) && s.CompareAll(t1, t2) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareQuickIsTotalOrder(t *testing.T) {
	s := transcriptSchema()
	cols := s.AllColumns()
	f := func(a1, a2, b1, b2 int64) bool {
		ta := s.MustMake(a1, a2)
		tb := s.MustMake(b1, b2)
		ab := s.Compare(ta, tb, cols)
		ba := s.Compare(tb, ta, cols)
		if ab != -ba {
			return false
		}
		if ab == 0 {
			return a1 == b1 && a2 == b2
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCompareFuncMatchesCompare(t *testing.T) {
	s := NewSchema(Int64Field("a"), CharField("b", 6), Int64Field("c"))
	colSets := [][]int{{0}, {2}, {1}, {0, 1}, {2, 0}, {0, 1, 2}}
	rng := rand.New(rand.NewSource(4))
	mk := func() Tuple {
		return s.MustMake(rng.Int63n(8)-4, string(rune('a'+rng.Intn(3))), rng.Int63n(4))
	}
	for _, cols := range colSets {
		f := s.CompareFunc(cols)
		for trial := 0; trial < 200; trial++ {
			t1, t2 := mk(), mk()
			if got, want := f(t1, t2), s.Compare(t1, t2, cols); got != want {
				t.Fatalf("cols %v: compiled %d, generic %d for %s vs %s",
					cols, got, want, s.Format(t1), s.Format(t2))
			}
		}
	}
}

func TestHashFuncMatchesHash(t *testing.T) {
	s := NewSchema(Int64Field("a"), CharField("b", 6))
	rng := rand.New(rand.NewSource(5))
	for _, cols := range [][]int{{0}, {1}, {0, 1}, {1, 0}} {
		f := s.HashFunc(cols)
		for trial := 0; trial < 100; trial++ {
			tp := s.MustMake(rng.Int63(), string(rune('a'+rng.Intn(26))))
			if f(tp) != s.Hash(tp, cols) {
				t.Fatalf("cols %v: compiled hash differs", cols)
			}
		}
	}
}

func BenchmarkCompareCompiledVsGeneric(b *testing.B) {
	s := NewSchema(Int64Field("a"), Int64Field("b"))
	cols := []int{0}
	t1 := s.MustMake(12345, 1)
	t2 := s.MustMake(12346, 2)
	b.Run("generic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = s.Compare(t1, t2, cols)
		}
	})
	b.Run("compiled", func(b *testing.B) {
		f := s.CompareFunc(cols)
		for i := 0; i < b.N; i++ {
			_ = f(t1, t2)
		}
	})
}

func TestCloneIsIndependent(t *testing.T) {
	s := NewSchema(Int64Field("v"))
	a := s.MustMake(1)
	b := a.Clone()
	s.SetInt64(a, 0, 99)
	if got := s.Int64(b, 0); got != 1 {
		t.Errorf("clone mutated: %d", got)
	}
}

func BenchmarkHashTuple(b *testing.B) {
	s := transcriptSchema()
	cols := s.AllColumns()
	tp := s.MustMake(123456, 789)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Hash(tp, cols)
	}
}

func BenchmarkCompareTuple(b *testing.B) {
	s := transcriptSchema()
	cols := s.AllColumns()
	rng := rand.New(rand.NewSource(1))
	t1 := s.MustMake(rng.Int63(), rng.Int63())
	t2 := s.MustMake(rng.Int63(), rng.Int63())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Compare(t1, t2, cols)
	}
}
