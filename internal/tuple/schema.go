// Package tuple defines fixed-width record schemas and the tuple values that
// flow through the storage engine and the query operators.
//
// The paper's experimental substrate (§5.1) stores 8-byte divisor and
// quotient records and 16-byte dividend records; tuples here are flat byte
// slices whose layout is described by a Schema, so a tuple occupies exactly
// its declared width on a page and can be handed around by address without
// copying, as the paper's buffer manager does.
package tuple

import (
	"fmt"
	"strings"
)

// Kind enumerates the supported column types. All types are fixed width so
// that records have a fixed size and pages can be slotted uniformly.
type Kind uint8

const (
	// KindInt64 is a signed 64-bit integer stored little-endian.
	KindInt64 Kind = iota
	// KindChar is a fixed-width byte string, padded with zero bytes.
	KindChar
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt64:
		return "INT64"
	case KindChar:
		return "CHAR"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Field describes one column of a schema.
type Field struct {
	Name  string
	Kind  Kind
	Width int // bytes occupied; 8 for KindInt64, caller-chosen for KindChar
}

// Int64Field returns an 8-byte integer column.
func Int64Field(name string) Field {
	return Field{Name: name, Kind: KindInt64, Width: 8}
}

// CharField returns a fixed-width character column of w bytes.
func CharField(name string, w int) Field {
	return Field{Name: name, Kind: KindChar, Width: w}
}

// Schema is an immutable description of a record layout: an ordered list of
// fixed-width fields with precomputed byte offsets.
type Schema struct {
	fields  []Field
	offsets []int
	width   int
}

// NewSchema builds a schema from fields. It panics on invalid field widths
// because schemas are built from program constants, not user input.
func NewSchema(fields ...Field) *Schema {
	s := &Schema{
		fields:  make([]Field, len(fields)),
		offsets: make([]int, len(fields)),
	}
	copy(s.fields, fields)
	off := 0
	for i, f := range s.fields {
		switch f.Kind {
		case KindInt64:
			if f.Width != 8 {
				panic(fmt.Sprintf("tuple: int64 field %q must have width 8, got %d", f.Name, f.Width))
			}
		case KindChar:
			if f.Width <= 0 {
				panic(fmt.Sprintf("tuple: char field %q must have positive width, got %d", f.Name, f.Width))
			}
		default:
			panic(fmt.Sprintf("tuple: field %q has unknown kind %d", f.Name, f.Kind))
		}
		s.offsets[i] = off
		off += f.Width
	}
	s.width = off
	return s
}

// Width returns the total record width in bytes.
func (s *Schema) Width() int { return s.width }

// NumFields returns the number of columns.
func (s *Schema) NumFields() int { return len(s.fields) }

// Field returns the i-th column description.
func (s *Schema) Field(i int) Field { return s.fields[i] }

// Offset returns the byte offset of the i-th column within a record.
func (s *Schema) Offset(i int) int { return s.offsets[i] }

// IndexOf returns the position of the named column, or -1 if absent.
func (s *Schema) IndexOf(name string) int {
	for i, f := range s.fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Columns returns the column names in order.
func (s *Schema) Columns() []string {
	names := make([]string, len(s.fields))
	for i, f := range s.fields {
		names[i] = f.Name
	}
	return names
}

// Project returns the schema of the listed columns, in the listed order.
func (s *Schema) Project(cols []int) *Schema {
	fields := make([]Field, len(cols))
	for i, c := range cols {
		fields[i] = s.fields[c]
	}
	return NewSchema(fields...)
}

// Concat returns a schema holding this schema's columns followed by other's.
func (s *Schema) Concat(other *Schema) *Schema {
	fields := make([]Field, 0, len(s.fields)+len(other.fields))
	fields = append(fields, s.fields...)
	fields = append(fields, other.fields...)
	return NewSchema(fields...)
}

// Equal reports whether the two schemas have identical layout (names
// included).
func (s *Schema) Equal(other *Schema) bool {
	if s.width != other.width || len(s.fields) != len(other.fields) {
		return false
	}
	for i := range s.fields {
		if s.fields[i] != other.fields[i] {
			return false
		}
	}
	return true
}

// String renders the schema as "(name TYPE, ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, f := range s.fields {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", f.Name, f.Kind)
		if f.Kind == KindChar {
			fmt.Fprintf(&b, "(%d)", f.Width)
		}
	}
	b.WriteByte(')')
	return b.String()
}

// AllColumns returns [0, 1, ..., n-1], the identity projection.
func (s *Schema) AllColumns() []int {
	cols := make([]int, len(s.fields))
	for i := range cols {
		cols[i] = i
	}
	return cols
}

// Complement returns the columns of the schema that are not in cols,
// preserving schema order. It is how quotient attributes are derived from
// divisor attributes: quotient = dividend columns \ divisor columns.
func (s *Schema) Complement(cols []int) []int {
	in := make(map[int]bool, len(cols))
	for _, c := range cols {
		in[c] = true
	}
	out := make([]int, 0, len(s.fields)-len(cols))
	for i := range s.fields {
		if !in[i] {
			out = append(out, i)
		}
	}
	return out
}
