// Package hashtab implements the bucket-chained hash tables used by the
// hash-based algorithms. Following the paper's implementation notes (§5.1),
// conflict resolution is bucket chaining and each chain element carries the
// tuple plus the per-algorithm payload: the divisor number for divisor
// tables, the bit-map pointer (or counter) for quotient tables, and a grouped
// count for aggregation tables.
//
// The table counts hash calculations and tuple comparisons so callers can
// report deterministic CPU costs in Table 1 units.
package hashtab

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"repro/internal/bitmap"
	"repro/internal/tuple"
)

// elementOverheadBytes approximates the per-element bookkeeping (next
// pointer, numbers, slice header) for memory-budget accounting.
const elementOverheadBytes = 48

// Element is one chain entry. Exactly one of the payload fields is used by
// any given algorithm.
type Element struct {
	next  *Element
	Tuple tuple.Tuple    // the stored key tuple (owned copy)
	Num   int64          // divisor number, counter, or grouped count
	Bits  *bitmap.Bitmap // quotient candidate bit map (hash-division)
}

// Stats count the work the table performed, in cost-model units. Rehash
// moves during growth are real work too: every element moved recomputes its
// hash, so grow() feeds Hashes (and Rehashed, so the rehash share stays
// visible) rather than silently omitting it from the cost accounting.
type Stats struct {
	Hashes      int64 // hash value calculations (unit Hash), rehashes included
	Comparisons int64 // tuple comparisons while scanning buckets (unit Comp)
	Rehashed    int64 // element moves performed by grow() rehashes
}

// Table is a bucket-chained hash table over fixed-width tuples.
type Table struct {
	schema   *tuple.Schema
	buckets  []*Element
	n        int
	memBytes int
	stats    Stats
	maxLoad  float64 // grow when exceeded; 0 = never grow
}

// New creates a table for key tuples of the given schema with nBuckets
// chains. nBuckets is rounded up to at least 1.
func New(schema *tuple.Schema, nBuckets int) *Table {
	if nBuckets < 1 {
		nBuckets = 1
	}
	return &Table{
		schema:  schema,
		buckets: make([]*Element, nBuckets),
		maxLoad: 4,
	}
}

// NewForExpected sizes the table so the average bucket holds hbs tuples at
// the expected cardinality, the paper's "average size of each hash bucket"
// parameter (hbs = 2 in §4.6).
func NewForExpected(schema *tuple.Schema, expected int, hbs float64) *Table {
	if hbs <= 0 {
		hbs = 2
	}
	return New(schema, int(float64(expected)/hbs)+1)
}

// NewWithCapacity pre-sizes the table to hold capacity elements at the
// default bucket size without ever growing: batch build loops use it when
// the input cardinality is known from workload statistics, so the rehash
// work grow() would charge never happens. The table still grows past ~2×
// the stated capacity if the estimate proves wrong.
func NewWithCapacity(schema *tuple.Schema, capacity int) *Table {
	if capacity < 0 {
		capacity = 0
	}
	return New(schema, capacity/2+1)
}

// SetMaxLoad configures automatic growth: the table doubles its bucket count
// whenever elements/buckets exceeds maxLoad. Zero disables growth (fixed
// geometry, as in the paper's experiments).
func (t *Table) SetMaxLoad(maxLoad float64) { t.maxLoad = maxLoad }

// Schema returns the stored tuples' layout.
func (t *Table) Schema() *tuple.Schema { return t.schema }

// Len returns the number of stored elements.
func (t *Table) Len() int { return t.n }

// NumBuckets returns the bucket count.
func (t *Table) NumBuckets() int { return len(t.buckets) }

// LoadFactor returns elements per bucket.
func (t *Table) LoadFactor() float64 { return float64(t.n) / float64(len(t.buckets)) }

// Stats returns the accumulated work counters.
func (t *Table) Stats() Stats { return t.stats }

// MemBytes approximates the table's heap footprint: buckets, elements, key
// copies, and any attached bit maps. Hash table overflow handling keys off
// this number.
func (t *Table) MemBytes() int {
	return t.memBytes + len(t.buckets)*8
}

func (t *Table) bucketFor(h uint64) int {
	// Multiply-shift range reduction (Lemire 2016): maps the 64-bit hash
	// uniformly onto [0, nbuckets) with one multiply-high instead of the
	// ~25-cycle 64-bit modulo. bucketFor sits on the probe hot path, twice
	// per dividend tuple in hash-division step 2.
	hi, _ := bits.Mul64(h, uint64(len(t.buckets)))
	return int(hi)
}

// Lookup finds the element whose stored tuple equals key (all columns), or
// nil.
func (t *Table) Lookup(key tuple.Tuple) *Element {
	t.stats.Hashes++
	h := tuple.HashBytes(key)
	for e := t.buckets[t.bucketFor(h)]; e != nil; e = e.next {
		t.stats.Comparisons++
		if t.schema.CompareAll(e.Tuple, key) == 0 {
			return e
		}
	}
	return nil
}

// LookupProjected matches the cols projection of src (laid out by srcSchema)
// against the stored tuples without materializing the projection — the inner
// loop of hash-division step 2.
func (t *Table) LookupProjected(src tuple.Tuple, srcSchema *tuple.Schema, cols []int) *Element {
	t.stats.Hashes++
	h := srcSchema.Hash(src, cols)
	for e := t.buckets[t.bucketFor(h)]; e != nil; e = e.next {
		t.stats.Comparisons++
		if srcSchema.EqualProjected(src, cols, e.Tuple) {
			return e
		}
	}
	return nil
}

// LookupPre is LookupProjected with the hash value and equality predicate
// supplied by the caller: batch kernels compile them once (tuple.HashFunc,
// tuple.EqualProjectedFunc) and hoist them out of the per-tuple loop. The
// hash must equal the schema hash of src's projection and eq must match
// EqualProjected, so Stats and the quotient are byte-identical to the
// generic path.
func (t *Table) LookupPre(h uint64, src tuple.Tuple, eq func(src, stored tuple.Tuple) bool) *Element {
	t.stats.Hashes++
	for e := t.buckets[t.bucketFor(h)]; e != nil; e = e.next {
		t.stats.Comparisons++
		if eq(src, e.Tuple) {
			return e
		}
	}
	return nil
}

// GetOrInsertPre is GetOrInsertProjected with caller-compiled hash and
// equality (see LookupPre); project materializes the stored key when an
// insert happens (rare relative to probes, so it stays a plain callback).
func (t *Table) GetOrInsertPre(h uint64, src tuple.Tuple, eq func(src, stored tuple.Tuple) bool, project func(src tuple.Tuple) tuple.Tuple) (e *Element, created bool) {
	t.stats.Hashes++
	for e := t.buckets[t.bucketFor(h)]; e != nil; e = e.next {
		t.stats.Comparisons++
		if eq(src, e.Tuple) {
			return e, false
		}
	}
	return t.insertHashed(h, project(src)), true
}

// LookupU64 is LookupProjected specialized to a single 8-byte key column:
// key is the little-endian word of the projection and h its schema hash
// (tuple.HashUint64LE of key). Every call is concrete — no closure
// indirection in the chain walk — while Stats stay identical to the generic
// probe. The batch hash-division kernel uses it when both the divisor and
// quotient projections are single 8-byte columns.
func (t *Table) LookupU64(h, key uint64) *Element {
	t.stats.Hashes++
	for e := t.buckets[t.bucketFor(h)]; e != nil; e = e.next {
		t.stats.Comparisons++
		if binary.LittleEndian.Uint64(e.Tuple) == key {
			return e
		}
	}
	return nil
}

// GetOrInsertU64 is GetOrInsertProjected specialized like LookupU64; the
// stored key is the eight little-endian bytes of key.
func (t *Table) GetOrInsertU64(h, key uint64) (e *Element, created bool) {
	t.stats.Hashes++
	for e := t.buckets[t.bucketFor(h)]; e != nil; e = e.next {
		t.stats.Comparisons++
		if binary.LittleEndian.Uint64(e.Tuple) == key {
			return e, false
		}
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], key)
	return t.insertHashed(h, tuple.Tuple(buf[:])), true
}

// Insert adds a copy of key unconditionally (duplicates allowed) and returns
// the new element.
func (t *Table) Insert(key tuple.Tuple) *Element {
	t.stats.Hashes++
	h := tuple.HashBytes(key)
	return t.insertHashed(h, key)
}

func (t *Table) insertHashed(h uint64, key tuple.Tuple) *Element {
	if t.maxLoad > 0 && float64(t.n+1) > t.maxLoad*float64(len(t.buckets)) {
		t.grow()
	}
	b := t.bucketFor(h)
	e := &Element{next: t.buckets[b], Tuple: key.Clone()}
	t.buckets[b] = e
	t.n++
	t.memBytes += len(key) + elementOverheadBytes
	return e
}

// GetOrInsert returns the element matching key, inserting a fresh one when
// absent. created reports whether an insertion happened. This is the
// "eliminate duplicates in the divisor on the fly" path.
func (t *Table) GetOrInsert(key tuple.Tuple) (e *Element, created bool) {
	t.stats.Hashes++
	h := tuple.HashBytes(key)
	for e := t.buckets[t.bucketFor(h)]; e != nil; e = e.next {
		t.stats.Comparisons++
		if t.schema.CompareAll(e.Tuple, key) == 0 {
			return e, false
		}
	}
	return t.insertHashed(h, key), true
}

// GetOrInsertProjected is GetOrInsert keyed by the cols projection of src;
// the stored tuple is the materialized projection. This is the quotient-table
// probe of hash-division step 2.
func (t *Table) GetOrInsertProjected(src tuple.Tuple, srcSchema *tuple.Schema, cols []int) (e *Element, created bool) {
	t.stats.Hashes++
	h := srcSchema.Hash(src, cols)
	for e := t.buckets[t.bucketFor(h)]; e != nil; e = e.next {
		t.stats.Comparisons++
		if srcSchema.EqualProjected(src, cols, e.Tuple) {
			return e, false
		}
	}
	return t.insertHashed(h, srcSchema.ProjectTuple(src, cols)), true
}

// Frozen is an immutable, concurrently probeable view of a Table. Every
// Table probe mutates the table's Stats, so sharing a *Table across
// goroutines is a data race even for pure lookups; Freeze separates the two
// concerns. A Frozen view carries no mutable state — each probe takes the
// caller's own *Stats accumulator — so any number of goroutines may probe it
// simultaneously. The parallel shared-table absorb path (DESIGN.md §9) uses
// this for the divisor table, which is immutable after its build phase.
type Frozen struct {
	schema  *tuple.Schema
	buckets []*Element
}

// Freeze returns a read-only concurrent view of the table's current
// contents. The table must not be mutated afterwards (no inserts, no Reset);
// probes on the Table itself remain legal but still race with Frozen probes
// only through Stats, which Frozen does not touch.
func (t *Table) Freeze() *Frozen {
	return &Frozen{schema: t.schema, buckets: t.buckets}
}

func (f *Frozen) bucketFor(h uint64) int {
	hi, _ := bits.Mul64(h, uint64(len(f.buckets)))
	return int(hi)
}

// Lookup is Table.Lookup against the frozen view; st accumulates the probe
// work and must be private to the calling goroutine.
func (f *Frozen) Lookup(key tuple.Tuple, st *Stats) *Element {
	st.Hashes++
	h := tuple.HashBytes(key)
	for e := f.buckets[f.bucketFor(h)]; e != nil; e = e.next {
		st.Comparisons++
		if f.schema.CompareAll(e.Tuple, key) == 0 {
			return e
		}
	}
	return nil
}

// LookupProjected is Table.LookupProjected against the frozen view.
func (f *Frozen) LookupProjected(src tuple.Tuple, srcSchema *tuple.Schema, cols []int, st *Stats) *Element {
	st.Hashes++
	h := srcSchema.Hash(src, cols)
	for e := f.buckets[f.bucketFor(h)]; e != nil; e = e.next {
		st.Comparisons++
		if srcSchema.EqualProjected(src, cols, e.Tuple) {
			return e
		}
	}
	return nil
}

// LookupPre is Table.LookupPre against the frozen view: caller-compiled hash
// and equality, caller-owned stats.
func (f *Frozen) LookupPre(h uint64, src tuple.Tuple, eq func(src, stored tuple.Tuple) bool, st *Stats) *Element {
	st.Hashes++
	for e := f.buckets[f.bucketFor(h)]; e != nil; e = e.next {
		st.Comparisons++
		if eq(src, e.Tuple) {
			return e
		}
	}
	return nil
}

// LookupU64 is Table.LookupU64 against the frozen view.
func (f *Frozen) LookupU64(h, key uint64, st *Stats) *Element {
	st.Hashes++
	for e := f.buckets[f.bucketFor(h)]; e != nil; e = e.next {
		st.Comparisons++
		if binary.LittleEndian.Uint64(e.Tuple) == key {
			return e
		}
	}
	return nil
}

func (t *Table) grow() {
	old := t.buckets
	t.buckets = make([]*Element, 2*len(old))
	var moved int64
	for _, chain := range old {
		for e := chain; e != nil; {
			next := e.next
			b := t.bucketFor(tuple.HashBytes(e.Tuple))
			e.next = t.buckets[b]
			t.buckets[b] = e
			e = next
			moved++
		}
	}
	// Each move recomputed a hash; charge it so cost counters reflect the
	// rehash work.
	t.stats.Hashes += moved
	t.stats.Rehashed += moved
}

// AddMemBytes records payload memory attached to elements (bit maps), so
// MemBytes reflects the true footprint.
func (t *Table) AddMemBytes(n int) { t.memBytes += n }

// Iterate calls fn for every element in bucket order (the "scan all buckets"
// of hash-division step 3). Iteration stops at the first error.
func (t *Table) Iterate(fn func(*Element) error) error {
	for _, chain := range t.buckets {
		for e := chain; e != nil; e = e.next {
			if err := fn(e); err != nil {
				return err
			}
		}
	}
	return nil
}

// Reset empties the table, keeping the bucket array.
func (t *Table) Reset() {
	for i := range t.buckets {
		t.buckets[i] = nil
	}
	t.n = 0
	t.memBytes = 0
}

func (t *Table) String() string {
	return fmt.Sprintf("hashtab{%d elements, %d buckets, load %.2f}", t.n, len(t.buckets), t.LoadFactor())
}
