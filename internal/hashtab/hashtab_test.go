package hashtab

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/bitmap"
	"repro/internal/tuple"
)

func keySchema() *tuple.Schema {
	return tuple.NewSchema(tuple.Int64Field("k"))
}

func TestInsertLookup(t *testing.T) {
	s := keySchema()
	tab := New(s, 8)
	for v := 0; v < 100; v++ {
		e := tab.Insert(s.MustMake(v))
		e.Num = int64(v * 10)
	}
	if tab.Len() != 100 {
		t.Errorf("Len = %d, want 100", tab.Len())
	}
	for v := 0; v < 100; v++ {
		e := tab.Lookup(s.MustMake(v))
		if e == nil {
			t.Fatalf("Lookup(%d) = nil", v)
		}
		if e.Num != int64(v*10) {
			t.Errorf("Lookup(%d).Num = %d", v, e.Num)
		}
	}
	if tab.Lookup(s.MustMake(999)) != nil {
		t.Error("Lookup(missing) should be nil")
	}
}

func TestInsertClonesKey(t *testing.T) {
	s := keySchema()
	tab := New(s, 4)
	k := s.MustMake(7)
	tab.Insert(k)
	s.SetInt64(k, 0, 8) // mutate caller's tuple
	if tab.Lookup(s.MustMake(7)) == nil {
		t.Error("table aliased caller's tuple instead of cloning")
	}
}

func TestGetOrInsertDeduplicates(t *testing.T) {
	s := keySchema()
	tab := New(s, 4)
	e1, created := tab.GetOrInsert(s.MustMake(5))
	if !created {
		t.Error("first GetOrInsert should create")
	}
	e1.Num = 42
	e2, created := tab.GetOrInsert(s.MustMake(5))
	if created {
		t.Error("second GetOrInsert should find")
	}
	if e2 != e1 || e2.Num != 42 {
		t.Error("GetOrInsert returned a different element")
	}
	if tab.Len() != 1 {
		t.Errorf("Len = %d, want 1", tab.Len())
	}
}

func TestLookupProjected(t *testing.T) {
	// Dividend (student, course); divisor table stores course keys only.
	div := tuple.NewSchema(tuple.Int64Field("student"), tuple.Int64Field("course"))
	course := tuple.NewSchema(tuple.Int64Field("course"))
	tab := New(course, 4)
	tab.Insert(course.MustMake(101)).Num = 0
	tab.Insert(course.MustMake(102)).Num = 1

	d := div.MustMake(1, 102)
	e := tab.LookupProjected(d, div, []int{1})
	if e == nil || e.Num != 1 {
		t.Fatalf("LookupProjected = %v", e)
	}
	miss := div.MustMake(1, 999)
	if tab.LookupProjected(miss, div, []int{1}) != nil {
		t.Error("LookupProjected should miss for unknown course")
	}
}

func TestGetOrInsertProjected(t *testing.T) {
	div := tuple.NewSchema(tuple.Int64Field("student"), tuple.Int64Field("course"))
	quot := div.Project([]int{0})
	tab := New(quot, 4)

	d1 := div.MustMake(1, 101)
	d2 := div.MustMake(1, 102)
	d3 := div.MustMake(2, 101)

	e1, created := tab.GetOrInsertProjected(d1, div, []int{0})
	if !created {
		t.Error("first projected insert should create")
	}
	e2, created := tab.GetOrInsertProjected(d2, div, []int{0})
	if created || e2 != e1 {
		t.Error("same student should map to same quotient candidate")
	}
	_, created = tab.GetOrInsertProjected(d3, div, []int{0})
	if !created {
		t.Error("new student should create")
	}
	if tab.Len() != 2 {
		t.Errorf("Len = %d, want 2", tab.Len())
	}
	// The stored tuple is the projection.
	if got := quot.Int64(e1.Tuple, 0); got != 1 {
		t.Errorf("stored quotient key = %d, want 1", got)
	}
}

func TestDuplicateInsertAllowed(t *testing.T) {
	s := keySchema()
	tab := New(s, 2)
	tab.Insert(s.MustMake(1))
	tab.Insert(s.MustMake(1))
	if tab.Len() != 2 {
		t.Errorf("Len = %d, want 2 (Insert keeps duplicates)", tab.Len())
	}
}

func TestIterateVisitsAll(t *testing.T) {
	s := keySchema()
	tab := New(s, 4)
	for v := 0; v < 50; v++ {
		tab.Insert(s.MustMake(v))
	}
	seen := make(map[int64]bool)
	err := tab.Iterate(func(e *Element) error {
		seen[s.Int64(e.Tuple, 0)] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 50 {
		t.Errorf("Iterate visited %d distinct, want 50", len(seen))
	}
}

func TestGrowthKeepsElements(t *testing.T) {
	s := keySchema()
	tab := New(s, 1)
	tab.SetMaxLoad(2)
	for v := 0; v < 1000; v++ {
		tab.Insert(s.MustMake(v))
	}
	if tab.NumBuckets() <= 1 {
		t.Error("table did not grow")
	}
	if tab.LoadFactor() > 2.01 {
		t.Errorf("load factor %.2f exceeds max", tab.LoadFactor())
	}
	for v := 0; v < 1000; v++ {
		if tab.Lookup(s.MustMake(v)) == nil {
			t.Fatalf("lost key %d after growth", v)
		}
	}
}

func TestFixedGeometry(t *testing.T) {
	s := keySchema()
	tab := New(s, 3)
	tab.SetMaxLoad(0)
	for v := 0; v < 100; v++ {
		tab.Insert(s.MustMake(v))
	}
	if tab.NumBuckets() != 3 {
		t.Errorf("fixed table grew to %d buckets", tab.NumBuckets())
	}
}

func TestStatsCount(t *testing.T) {
	s := keySchema()
	tab := New(s, 1) // single bucket: comparisons are predictable
	tab.SetMaxLoad(0)
	tab.Insert(s.MustMake(1)) // 1 hash
	tab.Insert(s.MustMake(2)) // 1 hash
	tab.Lookup(s.MustMake(2)) // 1 hash + 1 comparison (2 is at chain head)
	st := tab.Stats()
	if st.Hashes != 3 {
		t.Errorf("Hashes = %d, want 3", st.Hashes)
	}
	if st.Comparisons != 1 {
		t.Errorf("Comparisons = %d, want 1", st.Comparisons)
	}
}

func TestMemBytesGrowsWithBitmaps(t *testing.T) {
	s := keySchema()
	tab := New(s, 4)
	base := tab.MemBytes()
	e := tab.Insert(s.MustMake(1))
	afterInsert := tab.MemBytes()
	if afterInsert <= base {
		t.Error("MemBytes did not grow on insert")
	}
	e.Bits = bitmap.New(1024)
	tab.AddMemBytes(e.Bits.SizeBytes())
	if tab.MemBytes() != afterInsert+128 {
		t.Errorf("MemBytes = %d, want %d", tab.MemBytes(), afterInsert+128)
	}
}

func TestReset(t *testing.T) {
	s := keySchema()
	tab := New(s, 4)
	tab.Insert(s.MustMake(1))
	tab.Reset()
	if tab.Len() != 0 || tab.Lookup(s.MustMake(1)) != nil {
		t.Error("Reset did not clear the table")
	}
}

func TestNewForExpected(t *testing.T) {
	s := keySchema()
	tab := NewForExpected(s, 100, 2)
	if tab.NumBuckets() != 51 {
		t.Errorf("NumBuckets = %d, want 51", tab.NumBuckets())
	}
	tab = NewForExpected(s, 0, 0)
	if tab.NumBuckets() < 1 {
		t.Error("degenerate sizing must still yield a bucket")
	}
}

// Property: a hash table behaves like a map for GetOrInsert counting.
func TestQuickBehavesLikeMap(t *testing.T) {
	s := keySchema()
	f := func(keys []int16) bool {
		tab := New(s, 4)
		model := make(map[int16]int64)
		for _, k := range keys {
			e, _ := tab.GetOrInsert(s.MustMake(int64(k)))
			e.Num++
			model[k]++
		}
		if tab.Len() != len(model) {
			return false
		}
		for k, want := range model {
			e := tab.Lookup(s.MustMake(int64(k)))
			if e == nil || e.Num != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGetOrInsert(b *testing.B) {
	s := keySchema()
	tab := NewForExpected(s, 1000, 2)
	k := s.New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.SetInt64(k, 0, int64(i%1000))
		tab.GetOrInsert(k)
	}
}

func BenchmarkLookupProjected(b *testing.B) {
	div := tuple.NewSchema(tuple.Int64Field("student"), tuple.Int64Field("course"))
	course := div.Project([]int{1})
	tab := NewForExpected(course, 400, 2)
	for v := 0; v < 400; v++ {
		tab.Insert(course.MustMake(v))
	}
	d := div.MustMake(1, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tab.LookupProjected(d, div, []int{1}) == nil {
			b.Fatal("miss")
		}
	}
}

func TestNewWithCapacityNeverGrows(t *testing.T) {
	s := keySchema()
	for _, capacity := range []int{0, 1, 10, 100, 1000} {
		tab := NewWithCapacity(s, capacity)
		buckets := tab.NumBuckets()
		for v := 0; v < capacity; v++ {
			tab.Insert(s.MustMake(v))
		}
		if got := tab.Stats().Rehashed; got != 0 {
			t.Errorf("capacity %d: Rehashed = %d, want 0", capacity, got)
		}
		if tab.NumBuckets() != buckets {
			t.Errorf("capacity %d: buckets grew %d -> %d", capacity, buckets, tab.NumBuckets())
		}
	}
}

func TestGrowChargesRehashes(t *testing.T) {
	s := keySchema()
	tab := New(s, 1) // maxLoad 4: fifth insert triggers growth
	const n = 100
	for v := 0; v < n; v++ {
		tab.Insert(s.MustMake(v))
	}
	st := tab.Stats()
	if st.Rehashed == 0 {
		t.Fatal("no rehash moves recorded despite growth from 1 bucket")
	}
	// Every insert is one hash; every rehash move is one more. Nothing else
	// hashed here, so the ledger must balance exactly.
	if want := int64(n) + st.Rehashed; st.Hashes != want {
		t.Errorf("Hashes = %d, want inserts+rehashed = %d", st.Hashes, want)
	}
	// All elements must still be reachable after the rehashes.
	for v := 0; v < n; v++ {
		if tab.Lookup(s.MustMake(v)) == nil {
			t.Fatalf("Lookup(%d) = nil after growth", v)
		}
	}
}

func TestLookupPreMatchesProjected(t *testing.T) {
	src := tuple.NewSchema(tuple.Int64Field("a"), tuple.Int64Field("b"))
	cols := []int{1}
	ks := src.Project(cols)
	generic := New(ks, 8)
	pre := New(ks, 8)
	hash := src.HashFunc(cols)
	eq := src.EqualProjectedFunc(cols)
	project := func(t tuple.Tuple) tuple.Tuple { return src.ProjectTuple(t, cols) }

	for v := 0; v < 50; v++ {
		tp := src.MustMake(v, v%10)
		_, c1 := generic.GetOrInsertProjected(tp, src, cols)
		_, c2 := pre.GetOrInsertPre(hash(tp), tp, eq, project)
		if c1 != c2 {
			t.Fatalf("insert %d: created %v vs %v", v, c1, c2)
		}
	}
	for v := 0; v < 60; v++ {
		tp := src.MustMake(v, v%12)
		e1 := generic.LookupProjected(tp, src, cols)
		e2 := pre.LookupPre(hash(tp), tp, eq)
		if (e1 == nil) != (e2 == nil) {
			t.Fatalf("lookup %d: generic %v, pre %v", v, e1, e2)
		}
	}
	if generic.Stats() != pre.Stats() {
		t.Errorf("stats diverged: generic %+v, pre %+v", generic.Stats(), pre.Stats())
	}
}

func TestU64ProbesMatchProjected(t *testing.T) {
	src := tuple.NewSchema(tuple.Int64Field("a"), tuple.Int64Field("b"))
	cols := []int{0}
	ks := src.Project(cols)
	generic := New(ks, 8)
	fast := New(ks, 8)

	key := func(v int) uint64 { return uint64(int64(v)) }
	for v := 0; v < 50; v++ {
		tp := src.MustMake(v%20, v)
		_, c1 := generic.GetOrInsertProjected(tp, src, cols)
		k := key(v % 20)
		_, c2 := fast.GetOrInsertU64(tuple.HashUint64LE(k), k)
		if c1 != c2 {
			t.Fatalf("insert %d: created %v vs %v", v, c1, c2)
		}
	}
	for v := 0; v < 30; v++ {
		tp := src.MustMake(v, 0)
		e1 := generic.LookupProjected(tp, src, cols)
		k := key(v)
		e2 := fast.LookupU64(tuple.HashUint64LE(k), k)
		if (e1 == nil) != (e2 == nil) {
			t.Fatalf("lookup %d: generic %v, fast %v", v, e1, e2)
		}
		if e1 != nil && ks.CompareAll(e1.Tuple, e2.Tuple) != 0 {
			t.Errorf("lookup %d: stored keys differ", v)
		}
	}
	if generic.Stats() != fast.Stats() {
		t.Errorf("stats diverged: generic %+v, fast %+v", generic.Stats(), fast.Stats())
	}
}

func TestHashUint64LEMatchesHashBytes(t *testing.T) {
	s := keySchema()
	for _, v := range []int64{0, 1, -1, 42, 1 << 40, -(1 << 50)} {
		tp := s.MustMake(v)
		if got, want := tuple.HashUint64LE(uint64(v)), tuple.HashBytes(tp); got != want {
			t.Errorf("HashUint64LE(%d) = %#x, HashBytes = %#x", v, got, want)
		}
	}
}

// TestFrozenMatchesTable probes a frozen view and the live table with the
// same keys and checks identical results AND identical stats growth, so the
// shared-table path stays cost-accounting-compatible with the serial path.
func TestFrozenMatchesTable(t *testing.T) {
	s := keySchema()
	tab := New(s, 8)
	for i := 0; i < 50; i += 2 {
		e := tab.Insert(s.MustMake(i))
		e.Num = int64(i)
	}
	f := tab.Freeze()
	base := tab.Stats()
	var st Stats
	src := tuple.NewSchema(tuple.Int64Field("pad"), tuple.Int64Field("k"))
	for i := 0; i < 50; i++ {
		key := s.MustMake(i)
		want := tab.Lookup(key)
		got := f.Lookup(key, &st)
		if (want == nil) != (got == nil) {
			t.Fatalf("key %d: table %v, frozen %v", i, want, got)
		}
		if want != nil && (want != got || got.Num != int64(i)) {
			t.Fatalf("key %d: frozen returned different element", i)
		}
		// Projected probe from a wider source tuple.
		wide := src.MustMake(999, i)
		if pw, pg := tab.LookupProjected(wide, src, []int{1}), f.LookupProjected(wide, src, []int{1}, &st); pw != pg {
			t.Fatalf("key %d: projected probe mismatch", i)
		}
	}
	delta := tab.Stats()
	delta.Hashes -= base.Hashes
	delta.Comparisons -= base.Comparisons
	if st != delta {
		t.Errorf("frozen stats %+v != table stats delta %+v", st, delta)
	}
}

// TestFrozenConcurrentProbes checks (under -race) that one Frozen view can be
// probed from many goroutines at once, each with private stats.
func TestFrozenConcurrentProbes(t *testing.T) {
	s := keySchema()
	tab := New(s, 16)
	for i := 0; i < 100; i++ {
		tab.Insert(s.MustMake(i)).Num = int64(i)
	}
	f := tab.Freeze()
	const goroutines = 8
	var wg sync.WaitGroup
	hits := make([]int, goroutines)
	stats := make([]Stats, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if e := f.Lookup(s.MustMake(i%150), &stats[g]); e != nil {
					hits[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if hits[g] != 150 { // i%150 < 100 holds for 150 of the 200 probes
			t.Errorf("goroutine %d: %d hits", g, hits[g])
		}
		if stats[g].Hashes != 200 {
			t.Errorf("goroutine %d: %d hashes, want 200", g, stats[g].Hashes)
		}
	}
}
