// Command divgen generates division workloads as CSV files, for use with
// divql or external tools.
//
//	divgen -s 25 -q 100 -o .              # R = Q × S, the paper's case
//	divgen -s 10 -q 50 -full 0.4 -noise 3 # diluted instance
//
// It writes transcript.csv (student_id, course_no), courses.csv (course_no),
// and quotient.csv (the ground-truth student ids).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "divgen: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("divgen", flag.ContinueOnError)
	s := fs.Int("s", 25, "divisor tuples |S|")
	q := fs.Int("q", 100, "quotient candidates")
	full := fs.Float64("full", 1.0, "fraction of candidates in the quotient")
	match := fs.Float64("match", 0.5, "match probability for non-full candidates")
	noise := fs.Int("noise", 0, "non-matching tuples per candidate")
	dup := fs.Int("dup", 1, "dividend duplication factor")
	zipf := fs.Float64("zipf", 0, "course popularity Zipf skew (>1 to enable)")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("o", ".", "output directory")
	if err := fs.Parse(args); err != nil {
		return err
	}

	inst, err := workload.Generate(workload.Config{
		DivisorTuples:      *s,
		QuotientCandidates: *q,
		FullFraction:       *full,
		MatchFraction:      *match,
		NoisePerCandidate:  *noise,
		DuplicateFactor:    *dup,
		CourseZipfS:        *zipf,
		Shuffle:            true,
		Seed:               *seed,
	})
	if err != nil {
		return err
	}

	write := func(name string, rows func(w io.Writer) error) error {
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := rows(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", path)
		return nil
	}

	if err := write("transcript.csv", func(w io.Writer) error {
		for _, t := range inst.Dividend {
			if _, err := fmt.Fprintf(w, "%d,%d\n",
				workload.TranscriptSchema.Int64(t, 0), workload.TranscriptSchema.Int64(t, 1)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := write("courses.csv", func(w io.Writer) error {
		for _, t := range inst.Divisor {
			if _, err := fmt.Fprintf(w, "%d\n", workload.CourseSchema.Int64(t, 0)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	if err := write("quotient.csv", func(w io.Writer) error {
		for _, id := range inst.QuotientIDs {
			if _, err := fmt.Fprintf(w, "%d\n", id); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "|R|=%d |S|=%d quotient=%d\n",
		len(inst.Dividend), len(inst.Divisor), len(inst.QuotientIDs))
	return nil
}
