package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	reldiv "repro"
)

func TestGenerateAndDivideRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{"-s", "6", "-q", "30", "-full", "0.5", "-match", "0.6", "-o", dir, "-seed", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"transcript.csv", "courses.csv", "quotient.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
	}
	if !strings.Contains(out.String(), "|S|=6") {
		t.Errorf("summary missing: %s", out.String())
	}

	// The generated quotient.csv must equal an actual division of the
	// generated CSVs.
	load := func(name string, cols ...reldiv.Column) *reldiv.Relation {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		rel, err := reldiv.FromCSV(f, name, cols...)
		if err != nil {
			t.Fatal(err)
		}
		return rel
	}
	transcript := load("transcript.csv", reldiv.Int64Col("student"), reldiv.Int64Col("course"))
	courses := load("courses.csv", reldiv.Int64Col("course"))
	truth := load("quotient.csv", reldiv.Int64Col("student"))

	q, err := reldiv.Divide(transcript, courses, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumRows() != truth.NumRows() {
		t.Fatalf("division found %d students, ground truth %d", q.NumRows(), truth.NumRows())
	}
	want := make(map[int64]bool)
	for _, row := range truth.Rows() {
		want[row[0].(int64)] = true
	}
	for _, row := range q.Rows() {
		if !want[row[0].(int64)] {
			t.Fatalf("student %d not in ground truth", row[0])
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-s", "-5"}, &out); err == nil {
		t.Error("negative |S| accepted")
	}
	if err := run([]string{"-o", "/nonexistent-dir-xyz/abc"}, &out); err == nil {
		t.Error("unwritable output dir accepted")
	}
}
