package main

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
)

// TestNetworkScalingSectionPreservesSiblings checks that writing the
// network_scaling section leaves previously recorded sections byte-for-byte
// intact and that the section has the expected shape: both strategies, both
// shipping engines, a filtered and an unfiltered point per cell, identical
// wire accounting across engines, and the filtered point cheaper on the
// dividend wire.
func TestNetworkScalingSectionPreservesSiblings(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed sweep smoke in short mode")
	}
	dir := t.TempDir()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(old)

	// Seed the results file with stand-in sibling sections.
	if err := writeJSONSection(benchJSONFile, "table4", map[string]any{"geometry": "paper", "cells": []int{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := writeJSONSection(benchJSONFile, "parallel_scaling", map[string]any{"s": 20, "points": []int{3}}); err != nil {
		t.Fatal(err)
	}
	sections := func() map[string]json.RawMessage {
		data, err := os.ReadFile(benchJSONFile)
		if err != nil {
			t.Fatal(err)
		}
		doc := map[string]json.RawMessage{}
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatal(err)
		}
		return doc
	}
	before := sections()

	if err := runDistributed([]string{"-sizes", "25", "-workers", "2", "-reps", "1", "-json"}); err != nil {
		t.Fatal(err)
	}
	after := sections()
	for _, name := range []string{"table4", "parallel_scaling"} {
		if !bytes.Equal(before[name], after[name]) {
			t.Errorf("section %q changed:\nbefore: %s\nafter:  %s", name, before[name], after[name])
		}
	}
	raw, ok := after["network_scaling"]
	if !ok {
		t.Fatal("network_scaling section missing")
	}

	var section struct {
		Workers int `json:"workers"`
		Points  []struct {
			Strategy       string  `json:"strategy"`
			Filtered       bool    `json:"filtered"`
			Ship           string  `json:"ship"`
			LatencyScale   float64 `json:"latency_scale"`
			Gomaxprocs     int     `json:"gomaxprocs"`
			DividendBytes  int64   `json:"dividend_bytes"`
			FilterBytes    int64   `json:"filter_bytes"`
			TuplesFiltered int64   `json:"tuples_filtered"`
			Ns             int64   `json:"ns"`
			P50Ns          int64   `json:"p50_ns"`
			P95Ns          int64   `json:"p95_ns"`
		} `json:"points"`
	}
	if err := json.Unmarshal(raw, &section); err != nil {
		t.Fatal(err)
	}
	if section.Workers != 2 {
		t.Errorf("workers = %d, want 2", section.Workers)
	}
	// One cell × two strategies × two shipping engines × {unfiltered,
	// filtered}.
	if len(section.Points) != 8 {
		t.Fatalf("%d points, want 8", len(section.Points))
	}
	byKey := map[[3]any]int64{}
	for _, p := range section.Points {
		if p.Ship != "pipelined" && p.Ship != "phased" {
			t.Fatalf("point has ship %q", p.Ship)
		}
		if p.LatencyScale != 0 {
			t.Errorf("default sweep priced a link: latency_scale %g", p.LatencyScale)
		}
		if p.Gomaxprocs <= 0 {
			t.Errorf("point missing gomaxprocs stamp: %d", p.Gomaxprocs)
		}
		if p.P50Ns <= 0 || p.P95Ns < p.P50Ns || p.Ns > p.P50Ns {
			t.Errorf("%s/%s wall-clock stats out of order: min %d, p50 %d, p95 %d",
				p.Strategy, p.Ship, p.Ns, p.P50Ns, p.P95Ns)
		}
		byKey[[3]any{p.Strategy, p.Ship, p.Filtered}] = p.DividendBytes + p.FilterBytes
		if p.Filtered && p.TuplesFiltered == 0 {
			t.Errorf("%s/%s filtered point dropped no tuples", p.Strategy, p.Ship)
		}
		if !p.Filtered && p.FilterBytes != 0 {
			t.Errorf("%s/%s unfiltered point reports %d filter bytes", p.Strategy, p.Ship, p.FilterBytes)
		}
	}
	for _, strategy := range []string{"quotient-partitioning", "divisor-partitioning"} {
		for _, ship := range []string{"pipelined", "phased"} {
			plain, filtered := byKey[[3]any{strategy, ship, false}], byKey[[3]any{strategy, ship, true}]
			if plain == 0 || filtered == 0 {
				t.Fatalf("%s/%s: missing point pair (plain=%d filtered=%d)", strategy, ship, plain, filtered)
			}
			if filtered >= plain {
				t.Errorf("%s/%s: filtered wire %d ≥ unfiltered %d", strategy, ship, filtered, plain)
			}
		}
		// DESIGN.md §15 parity: the engines must agree on wire accounting.
		for _, f := range []bool{false, true} {
			if byKey[[3]any{strategy, "pipelined", f}] != byKey[[3]any{strategy, "phased", f}] {
				t.Errorf("%s filtered=%v: wire bytes differ across shipping engines (%d vs %d)",
					strategy, f, byKey[[3]any{strategy, "pipelined", f}], byKey[[3]any{strategy, "phased", f}])
			}
		}
	}
}
