package main

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
)

// TestNetworkScalingSectionPreservesSiblings checks that writing the
// network_scaling section leaves previously recorded sections byte-for-byte
// intact and that the section has the expected shape: both strategies, a
// filtered and an unfiltered point per cell, and the filtered point cheaper
// on the dividend wire.
func TestNetworkScalingSectionPreservesSiblings(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed sweep smoke in short mode")
	}
	dir := t.TempDir()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(old)

	// Seed the results file with stand-in sibling sections.
	if err := writeJSONSection(benchJSONFile, "table4", map[string]any{"geometry": "paper", "cells": []int{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := writeJSONSection(benchJSONFile, "parallel_scaling", map[string]any{"s": 20, "points": []int{3}}); err != nil {
		t.Fatal(err)
	}
	sections := func() map[string]json.RawMessage {
		data, err := os.ReadFile(benchJSONFile)
		if err != nil {
			t.Fatal(err)
		}
		doc := map[string]json.RawMessage{}
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatal(err)
		}
		return doc
	}
	before := sections()

	if err := runDistributed([]string{"-sizes", "25", "-workers", "2", "-reps", "1", "-json"}); err != nil {
		t.Fatal(err)
	}
	after := sections()
	for _, name := range []string{"table4", "parallel_scaling"} {
		if !bytes.Equal(before[name], after[name]) {
			t.Errorf("section %q changed:\nbefore: %s\nafter:  %s", name, before[name], after[name])
		}
	}
	raw, ok := after["network_scaling"]
	if !ok {
		t.Fatal("network_scaling section missing")
	}

	var section struct {
		Workers int `json:"workers"`
		Points  []struct {
			Strategy       string `json:"strategy"`
			Filtered       bool   `json:"filtered"`
			DividendBytes  int64  `json:"dividend_bytes"`
			FilterBytes    int64  `json:"filter_bytes"`
			TuplesFiltered int64  `json:"tuples_filtered"`
		} `json:"points"`
	}
	if err := json.Unmarshal(raw, &section); err != nil {
		t.Fatal(err)
	}
	if section.Workers != 2 {
		t.Errorf("workers = %d, want 2", section.Workers)
	}
	// One cell × two strategies × {unfiltered, filtered}.
	if len(section.Points) != 4 {
		t.Fatalf("%d points, want 4", len(section.Points))
	}
	byKey := map[[2]any]int64{}
	for _, p := range section.Points {
		byKey[[2]any{p.Strategy, p.Filtered}] = p.DividendBytes + p.FilterBytes
		if p.Filtered && p.TuplesFiltered == 0 {
			t.Errorf("%s filtered point dropped no tuples", p.Strategy)
		}
		if !p.Filtered && p.FilterBytes != 0 {
			t.Errorf("%s unfiltered point reports %d filter bytes", p.Strategy, p.FilterBytes)
		}
	}
	for _, strategy := range []string{"quotient-partitioning", "divisor-partitioning"} {
		plain, filtered := byKey[[2]any{strategy, false}], byKey[[2]any{strategy, true}]
		if plain == 0 || filtered == 0 {
			t.Fatalf("%s: missing point pair (plain=%d filtered=%d)", strategy, plain, filtered)
		}
		if filtered >= plain {
			t.Errorf("%s: filtered wire %d ≥ unfiltered %d", strategy, filtered, plain)
		}
	}
}
