package main

// divbench distributed: the §6 shared-nothing sweep over a real transport.
// Workers are separate processes (-forked, each one `divbench distributed
// -worker` dialing back to the coordinator) or goroutine-hosted TCP
// listeners (the default, CI-safe). Each cell divides the same skewed
// workload under every combination of partitioning strategy, shipping
// engine (pipelined vs strictly phased), and bit-vector filtering, with the
// links optionally priced by the paper's cost model (-latency scales). Two
// gates ride on -check: the filter plus its shipping cost must beat the
// unfiltered wire at every cell, and at latency scale >= 1 the pipelined
// filtered plan must beat the phased unfiltered one on wall clock by >= 1.5x
// — the overlap the morsel producers and per-link shippers exist to buy.

import (
	"context"
	"flag"
	"fmt"
	"math"
	"net"
	"os"
	osexec "os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/disk"
	"repro/internal/division"
	"repro/internal/exec"
	"repro/internal/netexchange"
	"repro/internal/workload"
)

// wallSpeedupFloor is what -check demands of pipelined+filtered over
// phased+unfiltered at latency scale >= 1 (p50 over reps).
const wallSpeedupFloor = 1.5

// networkScalingPoint is one (cell, latency, strategy, ship, filter)
// measurement in the network_scaling section.
type networkScalingPoint struct {
	S            int     `json:"s"`
	Q            int     `json:"q"`
	R            int     `json:"r"`
	Strategy     string  `json:"strategy"`
	Workers      int     `json:"workers"`
	Filtered     bool    `json:"filtered"`
	Ship         string  `json:"ship"`
	LatencyScale float64 `json:"latency_scale"`
	Gomaxprocs   int     `json:"gomaxprocs"`

	DividendBytes  int64 `json:"dividend_bytes"` // dividend batch frames alone
	FilterBytes    int64 `json:"filter_bytes"`   // bit-vector frames (0 unfiltered)
	BytesShipped   int64 `json:"bytes_shipped"`  // all frames, both directions
	TuplesShipped  int64 `json:"tuples_shipped"`
	TuplesFiltered int64 `json:"tuples_filtered"`
	RoundTrips     int64 `json:"round_trips"` // per-link protocol rounds, summed
	Ns             int64 `json:"ns"`          // min wall clock over reps
	P50Ns          int64 `json:"p50_ns"`      // median wall clock over reps
	P95Ns          int64 `json:"p95_ns"`      // p95 wall clock over reps
}

// quantileNs picks the q-quantile from sorted wall-clock samples.
func quantileNs(sorted []time.Duration, q float64) int64 {
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx].Nanoseconds()
}

func parseLatencies(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad -latency scale %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseShips(s string) ([]netexchange.ShipMode, error) {
	var out []netexchange.ShipMode
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "pipelined":
			out = append(out, netexchange.ShipPipelined)
		case "phased":
			out = append(out, netexchange.ShipPhased)
		default:
			return nil, fmt.Errorf("bad -ship mode %q (want pipelined or phased)", part)
		}
	}
	return out, nil
}

func runDistributed(args []string) error {
	fs := flag.NewFlagSet("distributed", flag.ContinueOnError)
	sizesFlag := fs.String("sizes", "25,100,400", "comma-separated |S|/|Q| grid sizes")
	noise := fs.Int("noise", 5, "non-matching tuples per candidate (what the filter drops)")
	zipf := fs.Float64("zipf", 1.5, "Zipf s for course skew (>1 unbalances divisor partitioning)")
	workers := fs.Int("workers", 4, "worker count")
	reps := fs.Int("reps", 3, "repetitions per point; minimum wall clock wins, p50/p95 reported")
	latencyFlag := fs.String("latency", "0", "comma-separated link latency scales (0 = raw loopback; 1 = the paper's cost model per frame and byte)")
	shipFlag := fs.String("ship", "pipelined,phased", "comma-separated shipping engines to sweep")
	budget := fs.Int64("budget", 0, "per-worker memory budget in bytes (0 = unbounded in-memory tables)")
	forked := fs.Bool("forked", false, "spawn workers as separate OS processes instead of goroutine-hosted listeners")
	jsonOut := fs.Bool("json", false, "merge a network_scaling section into "+benchJSONFile)
	check := fs.Bool("check", false, "exit nonzero unless filtering cuts dividend bytes-on-wire and, at latency >= 1, pipelined+filtered beats phased+unfiltered by >= 1.5x; quotients must match the serial reference exactly (skipped when GOMAXPROCS < 2)")
	workerMode := fs.Bool("worker", false, "internal: run as a forked worker process")
	connect := fs.String("connect", "", "internal: coordinator address a forked worker dials")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workerMode {
		return runForkedWorker(*connect)
	}
	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		return err
	}
	latencies, err := parseLatencies(*latencyFlag)
	if err != nil {
		return err
	}
	ships, err := parseShips(*shipFlag)
	if err != nil {
		return err
	}
	if *check && runtime.GOMAXPROCS(0) < 2 {
		fmt.Println("(distributed -check skipped: GOMAXPROCS < 2, no parallelism available)")
		return nil
	}

	baseConns, cleanup, err := startWorkers(*workers, *forked)
	if err != nil {
		return err
	}
	defer cleanup()

	mode := "goroutine-hosted"
	if *forked {
		mode = "forked processes"
	}
	fmt.Printf("Distributed division over TCP (§6 + DESIGN.md §14–15): workers=%d (%s), zipf=%.2f, noise=%d, budget=%d\n",
		*workers, mode, *zipf, *noise, *budget)
	fmt.Printf("%-6s %-6s %-5s %-10s %-8s %-24s %-8s %12s %12s %12s %10s %10s\n",
		"|S|", "|Q|", "lat", "ship", "filter", "strategy", "drops",
		"dividend B", "filter B", "total B", "p50", "p95")

	strategies := []division.PartitionStrategy{
		division.QuotientPartitioning, division.DivisorPartitioning,
	}
	var points []networkScalingPoint
	var checkErrs []string
	for _, size := range sizes {
		inst, err := workload.Generate(workload.Config{
			DivisorTuples:      size,
			QuotientCandidates: size,
			FullFraction:       0.5,
			MatchFraction:      0.8,
			NoisePerCandidate:  *noise,
			CourseZipfS:        *zipf,
			Shuffle:            true,
			Seed:               int64(size),
		})
		if err != nil {
			return err
		}
		spec := func() division.Spec {
			return division.Spec{
				Dividend:    exec.NewMemScan(workload.TranscriptSchema, inst.Dividend),
				Divisor:     exec.NewMemScan(workload.CourseSchema, inst.Divisor),
				DivisorCols: []int{1},
			}
		}
		ref, err := division.Reference(spec())
		if err != nil {
			return err
		}
		qs := spec().QuotientSchema()

		for _, scale := range latencies {
			// One wrapper layer per scale: frame counting always on, the
			// frame and byte delays priced from the paper's cost model.
			conns := make([]net.Conn, len(baseConns))
			for i, c := range baseConns {
				conns[i] = netexchange.LatencyConnFromCost(c, disk.PaperCost(), scale)
			}
			for _, strategy := range strategies {
				type cellKey struct {
					ship     string
					filtered bool
				}
				cell := make(map[cellKey]networkScalingPoint)
				for _, ship := range ships {
					for _, useFilter := range []bool{false, true} {
						var best *netexchange.Result
						samples := make([]time.Duration, 0, *reps)
						for r := 0; r < *reps; r++ {
							res, err := netexchange.Divide(context.Background(), spec(), netexchange.Config{
								Strategy:        strategy,
								BitVectorFilter: useFilter,
								Ship:            ship,
								WorkerBudget:    *budget,
							}, conns)
							if err != nil {
								return fmt.Errorf("size %d, lat %g, %s, %v, filter=%v: %w",
									size, scale, strategy, ship, useFilter, err)
							}
							if !division.EqualTupleSets(qs, res.Quotient, ref) {
								return fmt.Errorf("size %d, lat %g, %s, %v, filter=%v: quotient diverges from serial reference (%d vs %d tuples)",
									size, scale, strategy, ship, useFilter, len(res.Quotient), len(ref))
							}
							samples = append(samples, res.Elapsed)
							if best == nil || res.Elapsed < best.Elapsed {
								best = res
							}
						}
						sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
						var rounds int64
						for _, l := range best.Links {
							rounds += l.RoundTrips
						}
						p := networkScalingPoint{
							S: size, Q: size, R: len(inst.Dividend),
							Strategy: strategy.String(), Workers: *workers, Filtered: useFilter,
							Ship: ship.String(), LatencyScale: scale,
							Gomaxprocs:     runtime.GOMAXPROCS(0),
							DividendBytes:  best.DividendBytes,
							FilterBytes:    best.FilterBytes,
							BytesShipped:   best.Network.BytesShipped,
							TuplesShipped:  best.Network.TuplesShipped,
							TuplesFiltered: best.Network.TuplesFiltered,
							RoundTrips:     rounds,
							Ns:             samples[0].Nanoseconds(),
							P50Ns:          quantileNs(samples, 0.5),
							P95Ns:          quantileNs(samples, 0.95),
						}
						points = append(points, p)
						cell[cellKey{p.Ship, useFilter}] = p
						fmt.Printf("%-6d %-6d %-5g %-10s %-8v %-24s %-8d %12d %12d %12d %10s %10s\n",
							size, size, scale, p.Ship, useFilter, p.Strategy, p.TuplesFiltered,
							p.DividendBytes, p.FilterBytes, p.BytesShipped,
							time.Duration(p.P50Ns).Round(time.Microsecond),
							time.Duration(p.P95Ns).Round(time.Microsecond))
					}
				}
				// Gate 1, per shipping engine: the filter plus its own wire
				// cost must cut dividend bytes.
				for _, ship := range ships {
					unfiltered, okU := cell[cellKey{ship.String(), false}]
					filtered, okF := cell[cellKey{ship.String(), true}]
					if !okU || !okF {
						continue
					}
					saved := unfiltered.DividendBytes - filtered.DividendBytes - filtered.FilterBytes
					fmt.Printf("%47s %s net dividend wire saved by filter: %d bytes (%.1f%%)\n", "",
						ship, saved, 100*float64(saved)/float64(unfiltered.DividendBytes))
					if saved <= 0 {
						checkErrs = append(checkErrs, fmt.Sprintf(
							"size %d, lat %g, %s, %v: filter saved %d bytes (dividend %d → %d + %d filter)",
							size, scale, strategy, ship, saved, unfiltered.DividendBytes,
							filtered.DividendBytes, filtered.FilterBytes))
					}
				}
				// Gate 2, the overlap claim: once the links cost real time,
				// pipelined+filtered must beat phased+unfiltered on p50 wall
				// clock by the floor. Needs both engines in the sweep.
				phased, okP := cell[cellKey{netexchange.ShipPhased.String(), false}]
				piped, okPi := cell[cellKey{netexchange.ShipPipelined.String(), true}]
				if scale >= 1 && okP && okPi {
					speedup := float64(phased.P50Ns) / float64(piped.P50Ns)
					fmt.Printf("%47s pipelined+filtered vs phased+unfiltered: %.2fx\n", "", speedup)
					if speedup < wallSpeedupFloor {
						checkErrs = append(checkErrs, fmt.Sprintf(
							"size %d, lat %g, %s: pipelined+filtered %.2fx over phased+unfiltered, want >= %.1fx (%s vs %s)",
							size, scale, strategy, speedup, wallSpeedupFloor,
							time.Duration(piped.P50Ns).Round(time.Microsecond),
							time.Duration(phased.P50Ns).Round(time.Microsecond)))
					}
				}
			}
		}
	}

	if *jsonOut {
		section := map[string]any{
			"workers":    *workers,
			"forked":     *forked,
			"zipf":       *zipf,
			"noise":      *noise,
			"reps":       *reps,
			"budget":     *budget,
			"gomaxprocs": runtime.GOMAXPROCS(0),
			"points":     points,
		}
		if err := writeJSONSection(benchJSONFile, "network_scaling", section); err != nil {
			return err
		}
		fmt.Printf("(wrote network_scaling section to %s)\n", benchJSONFile)
	}

	if *check {
		if len(checkErrs) > 0 {
			for _, e := range checkErrs {
				fmt.Fprintf(os.Stderr, "distributed -check: %s\n", e)
			}
			return fmt.Errorf("distributed -check: %d gate failure(s)", len(checkErrs))
		}
		fmt.Println("distributed -check passed: filtering cut dividend bytes-on-wire at every cell, pipelined overlap held where priced, quotients exact")
	}
	return nil
}

// startWorkers provides n worker connections: goroutine-hosted listeners in
// this process, or forked `divbench distributed -worker` processes dialing
// back over TCP. cleanup closes the links and reaps whatever was started.
func startWorkers(n int, forked bool) (conns []net.Conn, cleanup func(), err error) {
	if !forked {
		cl, err := netexchange.StartLocalCluster(n)
		if err != nil {
			return nil, nil, err
		}
		return cl.Conns(), cl.Close, nil
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	exe, err := os.Executable()
	if err != nil {
		ln.Close()
		return nil, nil, err
	}
	var cmds []*osexec.Cmd
	cleanup = func() {
		for _, c := range conns {
			c.Close()
		}
		for _, cmd := range cmds {
			cmd.Wait()
		}
		ln.Close()
	}
	for i := 0; i < n; i++ {
		cmd := osexec.Command(exe, "distributed", "-worker", "-connect", ln.Addr().String())
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			cleanup()
			return nil, nil, err
		}
		cmds = append(cmds, cmd)
		conn, err := ln.Accept()
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		conns = append(conns, conn)
	}
	return conns, cleanup, nil
}

// runForkedWorker is the hidden worker mode: dial the coordinator and serve
// exchange jobs on that one link until it closes.
func runForkedWorker(addr string) error {
	if addr == "" {
		return fmt.Errorf("distributed -worker needs -connect address")
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	return netexchange.ServeWorker(conn)
}
