package main

// divbench distributed: the §6 shared-nothing sweep over a real transport.
// Workers are separate processes (-forked, each one `divbench distributed
// -worker` dialing back to the coordinator) or goroutine-hosted TCP
// listeners (the default, CI-safe). Each cell divides the same skewed
// workload twice per strategy — bit-vector filtering off, then on — and
// records what the filter did to dividend bytes-on-wire. -check gates on
// the paper's claim: the filter plus its shipping cost must still beat the
// unfiltered wire, with the quotient exactly matching the serial reference.

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	osexec "os/exec"
	"runtime"
	"time"

	"repro/internal/division"
	"repro/internal/exec"
	"repro/internal/netexchange"
	"repro/internal/workload"
)

// networkScalingPoint is one (cell, strategy, filter) measurement in the
// network_scaling section.
type networkScalingPoint struct {
	S        int    `json:"s"`
	Q        int    `json:"q"`
	R        int    `json:"r"`
	Strategy string `json:"strategy"`
	Workers  int    `json:"workers"`
	Filtered bool   `json:"filtered"`

	DividendBytes  int64 `json:"dividend_bytes"` // dividend batch frames alone
	FilterBytes    int64 `json:"filter_bytes"`   // bit-vector frames (0 unfiltered)
	BytesShipped   int64 `json:"bytes_shipped"`  // all frames, both directions
	TuplesShipped  int64 `json:"tuples_shipped"`
	TuplesFiltered int64 `json:"tuples_filtered"`
	RoundTrips     int64 `json:"round_trips"` // per-link protocol rounds, summed
	Ns             int64 `json:"ns"`          // min wall clock over reps
}

func runDistributed(args []string) error {
	fs := flag.NewFlagSet("distributed", flag.ContinueOnError)
	sizesFlag := fs.String("sizes", "25,100,400", "comma-separated |S|/|Q| grid sizes")
	noise := fs.Int("noise", 5, "non-matching tuples per candidate (what the filter drops)")
	zipf := fs.Float64("zipf", 1.5, "Zipf s for course skew (>1 unbalances divisor partitioning)")
	workers := fs.Int("workers", 4, "worker count")
	reps := fs.Int("reps", 3, "repetitions per point; minimum wall clock wins")
	forked := fs.Bool("forked", false, "spawn workers as separate OS processes instead of goroutine-hosted listeners")
	jsonOut := fs.Bool("json", false, "merge a network_scaling section into "+benchJSONFile)
	check := fs.Bool("check", false, "exit nonzero unless filtering cuts dividend bytes-on-wire with exact quotient parity (skipped when GOMAXPROCS < 2)")
	workerMode := fs.Bool("worker", false, "internal: run as a forked worker process")
	connect := fs.String("connect", "", "internal: coordinator address a forked worker dials")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workerMode {
		return runForkedWorker(*connect)
	}
	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		return err
	}
	if *check && runtime.GOMAXPROCS(0) < 2 {
		fmt.Println("(distributed -check skipped: GOMAXPROCS < 2, no parallelism available)")
		return nil
	}

	conns, cleanup, err := startWorkers(*workers, *forked)
	if err != nil {
		return err
	}
	defer cleanup()

	mode := "goroutine-hosted"
	if *forked {
		mode = "forked processes"
	}
	fmt.Printf("Distributed division over TCP (§6 + DESIGN.md §14): workers=%d (%s), zipf=%.2f, noise=%d\n",
		*workers, mode, *zipf, *noise)
	fmt.Printf("%-6s %-6s %-8s %-24s %-8s %12s %12s %12s %10s\n",
		"|S|", "|Q|", "filter", "strategy", "drops", "dividend B", "filter B", "total B", "elapsed")

	strategies := []division.PartitionStrategy{
		division.QuotientPartitioning, division.DivisorPartitioning,
	}
	var points []networkScalingPoint
	var checkErrs []string
	for _, size := range sizes {
		inst, err := workload.Generate(workload.Config{
			DivisorTuples:      size,
			QuotientCandidates: size,
			FullFraction:       0.5,
			MatchFraction:      0.8,
			NoisePerCandidate:  *noise,
			CourseZipfS:        *zipf,
			Shuffle:            true,
			Seed:               int64(size),
		})
		if err != nil {
			return err
		}
		spec := func() division.Spec {
			return division.Spec{
				Dividend:    exec.NewMemScan(workload.TranscriptSchema, inst.Dividend),
				Divisor:     exec.NewMemScan(workload.CourseSchema, inst.Divisor),
				DivisorCols: []int{1},
			}
		}
		ref, err := division.Reference(spec())
		if err != nil {
			return err
		}
		qs := spec().QuotientSchema()

		for _, strategy := range strategies {
			var unfiltered, filtered *networkScalingPoint
			for _, useFilter := range []bool{false, true} {
				var best *netexchange.Result
				for r := 0; r < *reps; r++ {
					res, err := netexchange.Divide(context.Background(), spec(), netexchange.Config{
						Strategy:        strategy,
						BitVectorFilter: useFilter,
					}, conns)
					if err != nil {
						return fmt.Errorf("size %d, %s, filter=%v: %w", size, strategy, useFilter, err)
					}
					if !division.EqualTupleSets(qs, res.Quotient, ref) {
						return fmt.Errorf("size %d, %s, filter=%v: quotient diverges from serial reference (%d vs %d tuples)",
							size, strategy, useFilter, len(res.Quotient), len(ref))
					}
					if best == nil || res.Elapsed < best.Elapsed {
						best = res
					}
				}
				var rounds int64
				for _, l := range best.Links {
					rounds += l.RoundTrips
				}
				p := networkScalingPoint{
					S: size, Q: size, R: len(inst.Dividend),
					Strategy: strategy.String(), Workers: *workers, Filtered: useFilter,
					DividendBytes:  best.DividendBytes,
					FilterBytes:    best.FilterBytes,
					BytesShipped:   best.Network.BytesShipped,
					TuplesShipped:  best.Network.TuplesShipped,
					TuplesFiltered: best.Network.TuplesFiltered,
					RoundTrips:     rounds,
					Ns:             best.Elapsed.Nanoseconds(),
				}
				points = append(points, p)
				if useFilter {
					filtered = &p
				} else {
					unfiltered = &p
				}
				fmt.Printf("%-6d %-6d %-8v %-24s %-8d %12d %12d %12d %10s\n",
					size, size, useFilter, p.Strategy, p.TuplesFiltered,
					p.DividendBytes, p.FilterBytes, p.BytesShipped,
					best.Elapsed.Round(time.Microsecond))
			}
			saved := unfiltered.DividendBytes - filtered.DividendBytes - filtered.FilterBytes
			fmt.Printf("%47s net dividend wire saved by filter: %d bytes (%.1f%%)\n", "",
				saved, 100*float64(saved)/float64(unfiltered.DividendBytes))
			if saved <= 0 {
				checkErrs = append(checkErrs, fmt.Sprintf(
					"size %d, %s: filter saved %d bytes (dividend %d → %d + %d filter)",
					size, strategy, saved, unfiltered.DividendBytes,
					filtered.DividendBytes, filtered.FilterBytes))
			}
		}
	}

	if *jsonOut {
		section := map[string]any{
			"workers":    *workers,
			"forked":     *forked,
			"zipf":       *zipf,
			"noise":      *noise,
			"reps":       *reps,
			"gomaxprocs": runtime.GOMAXPROCS(0),
			"points":     points,
		}
		if err := writeJSONSection(benchJSONFile, "network_scaling", section); err != nil {
			return err
		}
		fmt.Printf("(wrote network_scaling section to %s)\n", benchJSONFile)
	}

	if *check {
		if len(checkErrs) > 0 {
			for _, e := range checkErrs {
				fmt.Fprintf(os.Stderr, "distributed -check: %s\n", e)
			}
			return fmt.Errorf("distributed -check: bit-vector filtering failed to cut the wire at %d cell(s)", len(checkErrs))
		}
		fmt.Println("distributed -check passed: filtering cut dividend bytes-on-wire at every cell, quotients exact")
	}
	return nil
}

// startWorkers provides n worker connections: goroutine-hosted listeners in
// this process, or forked `divbench distributed -worker` processes dialing
// back over TCP. cleanup closes the links and reaps whatever was started.
func startWorkers(n int, forked bool) (conns []net.Conn, cleanup func(), err error) {
	if !forked {
		cl, err := netexchange.StartLocalCluster(n)
		if err != nil {
			return nil, nil, err
		}
		return cl.Conns(), cl.Close, nil
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	exe, err := os.Executable()
	if err != nil {
		ln.Close()
		return nil, nil, err
	}
	var cmds []*osexec.Cmd
	cleanup = func() {
		for _, c := range conns {
			c.Close()
		}
		for _, cmd := range cmds {
			cmd.Wait()
		}
		ln.Close()
	}
	for i := 0; i < n; i++ {
		cmd := osexec.Command(exe, "distributed", "-worker", "-connect", ln.Addr().String())
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			cleanup()
			return nil, nil, err
		}
		cmds = append(cmds, cmd)
		conn, err := ln.Accept()
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		conns = append(conns, conn)
	}
	return conns, cleanup, nil
}

// runForkedWorker is the hidden worker mode: dial the coordinator and serve
// exchange jobs on that one link until it closes.
func runForkedWorker(addr string) error {
	if addr == "" {
		return fmt.Errorf("distributed -worker needs -connect address")
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	return netexchange.ServeWorker(conn)
}
