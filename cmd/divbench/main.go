// Command divbench regenerates every table of the paper and runs the
// extension experiments.
//
// Usage:
//
//	divbench table1                  # Table 1: cost units
//	divbench table2                  # Table 2: analytical costs vs paper
//	divbench table3                  # Table 3: experimental cost parameters
//	divbench table4 [flags]          # Table 4: measured grid
//	divbench sweep  [flags]          # §4.6 dilution speculation
//	divbench overflow [flags]        # §3.4 hash table overflow escalation
//	divbench parallel [flags]        # §6 multi-processor scaling
//	divbench distributed [flags]     # §6 shared-nothing division over real transport
//	divbench spill [flags]           # out-of-core memory-pressure sweep
//	divbench serve [flags]           # concurrent query server / load generator
//	divbench example                 # Figure 2 worked example, step by step
//
// table4 flags:
//
//	-sizes 25,100,400   grid sizes for |S| and |Q|
//	-geometry paper     "paper" (8 KB pages) or "analytic" (5 R/page)
//	-measured           report measured CPU instead of counted CPU
//	-json               also merge results into BENCH_divbench.json
//	-profile            also merge a traced per-operator profile section
//
// batch flags (batch-vs-tuple execution ablation):
//
//	-sizes 100,400            grid sizes for |S| and |Q|
//	-batchsizes 64,256,1024   batch sizes to sweep
//	-reps 3                   repetitions (min wall clock wins)
//	-geometry paper           page geometry
//	-json                     also merge results into BENCH_divbench.json
//
// parallel flags (§6 multi-processor scaling):
//
//	-s 100 -q 400 -noise 5   workload shape
//	-workers 1,2,4,8         worker counts to sweep
//	-reps 3                  repetitions (min wall clock wins)
//	-json                    merge a parallel_scaling section into BENCH_divbench.json
//	-check                   exit nonzero unless morsel@4 workers beats serial
//	                         (skipped when GOMAXPROCS < 2)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/buffer"
	"repro/internal/costmodel"
	"repro/internal/disk"
	"repro/internal/division"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/tuple"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "table1":
		fmt.Print(bench.FormatTable1(costmodel.PaperUnits()))
	case "table2":
		if len(args) > 0 && args[0] == "-ceil" {
			// The faithful ⌈log⌉ reading of the sort formula, diverging
			// from the paper's printed numbers only at |S|=|Q|=400.
			rows := costmodel.Table2With(costmodel.CeilPasses)
			fmt.Println("Table 2 under ceil merge passes (see DESIGN.md):")
			fmt.Printf("%4s %4s", "|S|", "|Q|")
			for _, n := range costmodel.ColumnNames {
				fmt.Printf(" %14s", n)
			}
			fmt.Println()
			for _, row := range rows {
				fmt.Printf("%4d %4d", row.S, row.Q)
				for _, c := range row.Costs {
					fmt.Printf(" %14.0f", c)
				}
				fmt.Println()
			}
			return
		}
		fmt.Print(bench.FormatTable2())
	case "table3":
		fmt.Print(bench.FormatTable3(disk.PaperCost()))
	case "table4":
		err = runTable4(args)
	case "batch":
		err = runBatch(args)
	case "sweep":
		err = runSweep(args)
	case "duplicates":
		err = runDuplicates(args)
	case "crossover":
		err = runCrossover(args)
	case "overflow":
		err = runOverflow(args)
	case "parallel":
		err = runParallel(args)
	case "distributed":
		err = runDistributed(args)
	case "io":
		err = runIO(args)
	case "wal":
		err = runWAL(args)
	case "spill":
		err = runSpill(args)
	case "serve":
		err = runServe(args)
	case "example":
		err = runExample()
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "divbench: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "divbench: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: divbench <command> [flags]

commands:
  table1    Table 1 cost units
  table2    Table 2 analytical costs (ours vs paper)
  table3    Table 3 experimental cost parameters
  table4    Table 4 experimental grid (-sizes, -geometry, -measured, -json)
  batch     batch-vs-tuple execution ablation (-sizes, -batchsizes, -reps, -json)
  sweep     dilution sweep: hash-division when R != QxS
  duplicates duplicate-handling sweep: preprocessing costs vs hash-division
  crossover analytic cost-vs-|R| series and overflow cost model
  overflow  hash table overflow / partition escalation
  parallel  multi-processor scaling (-workers, -reps, -json, -check)
  distributed shared-nothing division over real TCP transport with bit-vector
            wire filtering (-sizes, -workers, -zipf, -noise, -forked, -json, -check)
  io        buffer-pool sharding and read-ahead overlap (-pages, -shards, -json, -check)
  wal       WAL group-commit throughput sweep (-appenders, -windows, -json, -check)
  spill     out-of-core memory-pressure sweep (-budgets, -strategy, -reps, -json, -check)
  serve     concurrent query server: -addr to listen, or a closed-loop client
            sweep (-clients, -queries, -mem, -grant, -json, -check)
  example   the paper's Figure 2 worked example`)
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad size %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

func configFor(geometry string) (bench.Config, error) {
	switch geometry {
	case "paper":
		return bench.PaperConfig(), nil
	case "analytic":
		return bench.AnalyticGeometryConfig(), nil
	default:
		return bench.Config{}, fmt.Errorf("unknown geometry %q (want paper or analytic)", geometry)
	}
}

// benchJSONFile is the merged results file the -json flags write. Each
// command owns one top-level section, so regenerating the ablation does not
// discard a previously recorded grid (and vice versa).
const benchJSONFile = "BENCH_divbench.json"

// writeJSONSection merges one named section into the results file,
// preserving every other section. A missing or unparsable file starts
// fresh.
func writeJSONSection(path, section string, v any) error {
	doc := map[string]json.RawMessage{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			doc = map[string]json.RawMessage{}
		}
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return err
	}
	doc[section] = raw
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// table4JSONCell is one (workload, algorithm) measurement in the JSON dump.
type table4JSONCell struct {
	S            int     `json:"s"`
	Q            int     `json:"q"`
	R            int     `json:"r"`
	Algorithm    string  `json:"algorithm"`
	NsOp         int64   `json:"ns_op"`          // measured pipeline wall clock
	CountedCPUMS float64 `json:"counted_cpu_ms"` // Table 1-priced operation counts
	SimIOMS      float64 `json:"sim_io_ms"`      // Table 3-priced device statistics
}

func runTable4(args []string) error {
	fs := flag.NewFlagSet("table4", flag.ContinueOnError)
	sizesFlag := fs.String("sizes", "25,100,400", "comma-separated |S|/|Q| grid sizes")
	geometry := fs.String("geometry", "paper", "page geometry: paper (8 KB) or analytic (5 R/page)")
	measured := fs.Bool("measured", false, "report measured CPU instead of counted CPU")
	jsonOut := fs.Bool("json", false, "merge results into "+benchJSONFile)
	profileOut := fs.Bool("profile", false, "merge a traced per-operator profile section into "+benchJSONFile)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		return err
	}
	cfg, err := configFor(*geometry)
	if err != nil {
		return err
	}
	start := time.Now()
	rows, err := bench.Table4(cfg, sizes)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatTable4(rows, !*measured))
	fmt.Printf("(grid of %d cells in %v; geometry=%s)\n", len(rows)*6, time.Since(start).Round(time.Millisecond), *geometry)
	if *jsonOut {
		var cells []table4JSONCell
		for _, row := range rows {
			for _, c := range row.Cells {
				cells = append(cells, table4JSONCell{
					S: c.S, Q: c.Q, R: c.R, Algorithm: c.Alg.String(),
					NsOp:         c.MeasuredCPU.Nanoseconds(),
					CountedCPUMS: c.CountedCPUMS,
					SimIOMS:      c.SimulatedIO,
				})
			}
		}
		section := map[string]any{"geometry": *geometry, "cells": cells}
		if err := writeJSONSection(benchJSONFile, "table4", section); err != nil {
			return err
		}
		fmt.Printf("(wrote table4 section to %s)\n", benchJSONFile)
	}
	if *profileOut {
		n := sizes[len(sizes)-1]
		section, err := profileSection(n)
		if err != nil {
			return err
		}
		if err := writeJSONSection(benchJSONFile, "profile", section); err != nil {
			return err
		}
		fmt.Printf("(wrote profile section at |S|=|Q|=%d to %s)\n", n, benchJSONFile)
	}
	return nil
}

// profileSection runs every algorithm once at the largest grid size with
// tracing enabled and returns its per-operator span tree. Wall-clock times
// are excluded (Tree(false)), so the section is deterministic across runs:
// only operation counts, row counts, and the span shapes are recorded.
func profileSection(n int) (map[string]any, error) {
	inst, err := workload.Generate(workload.PaperCase(n, n, 1))
	if err != nil {
		return nil, err
	}
	algs := make([]map[string]any, 0, len(division.Algorithms))
	for _, alg := range division.Algorithms {
		counters := &exec.Counters{}
		tr := obs.NewTracer()
		env := division.Env{
			Pool:     buffer.New(4 << 20),
			TempDev:  disk.NewDevice("temp", disk.PaperRunPageSize),
			Counters: counters,
			Trace:    tr,
		}
		sp := division.Spec{
			Dividend:    exec.NewMemScan(workload.TranscriptSchema, inst.Dividend),
			Divisor:     exec.NewMemScan(workload.CourseSchema, inst.Divisor),
			DivisorCols: []int{1},
		}
		op, err := division.New(alg, sp, env)
		if err != nil {
			return nil, err
		}
		qts, err := exec.Collect(op)
		if err != nil {
			return nil, err
		}
		prof := tr.Profile(counters)
		algs = append(algs, map[string]any{
			"algorithm":     alg.String(),
			"quotient_rows": len(qts),
			"counters":      *counters,
			"tree":          prof.Tree(false),
		})
	}
	return map[string]any{"s": n, "q": n, "r": len(inst.Dividend), "algorithms": algs}, nil
}

func runBatch(args []string) error {
	fs := flag.NewFlagSet("batch", flag.ContinueOnError)
	sizesFlag := fs.String("sizes", "100,400", "comma-separated |S|/|Q| grid sizes")
	batchFlag := fs.String("batchsizes", "64,256,1024", "comma-separated batch sizes to sweep")
	reps := fs.Int("reps", 3, "repetitions per cell; minimum wall clock wins")
	geometry := fs.String("geometry", "paper", "page geometry: paper (8 KB) or analytic (5 R/page)")
	jsonOut := fs.Bool("json", false, "merge results into "+benchJSONFile)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		return err
	}
	batchSizes, err := parseSizes(*batchFlag)
	if err != nil {
		return err
	}
	cfg, err := configFor(*geometry)
	if err != nil {
		return err
	}
	start := time.Now()
	cells, err := bench.BatchAblation(cfg, sizes, batchSizes, *reps)
	if err != nil {
		return err
	}
	fmt.Printf("Batch-vs-tuple hash-division ablation (geometry=%s, reps=%d, min wall clock):\n", *geometry, *reps)
	fmt.Print(bench.FormatAblation(cells))
	fmt.Printf("(%d cells in %v)\n", len(cells), time.Since(start).Round(time.Millisecond))
	if *jsonOut {
		section := map[string]any{"geometry": *geometry, "reps": *reps, "cells": cells}
		if err := writeJSONSection(benchJSONFile, "batch_ablation", section); err != nil {
			return err
		}
		fmt.Printf("(wrote batch_ablation section to %s)\n", benchJSONFile)
	}
	return nil
}

func runSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	s := fs.Int("s", 50, "|S| divisor tuples")
	q := fs.Int("q", 200, "quotient candidates")
	geometry := fs.String("geometry", "analytic", "page geometry")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := configFor(*geometry)
	if err != nil {
		return err
	}
	points, err := bench.DilutionSweep(*s, *q, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("Dilution sweep (|S|=%d, candidates=%d): total ms, counted CPU + simulated I/O\n", *s, *q)
	fmt.Printf("%-22s", "workload")
	for _, c := range points[0].Cells {
		fmt.Printf(" %14s", c.Alg)
	}
	fmt.Println()
	for _, p := range points {
		fmt.Printf("full=%.1f noise=%-2d      ", p.FullFraction, p.Noise)
		for _, c := range p.Cells {
			fmt.Printf(" %14.0f", c.TotalMS())
		}
		fmt.Println()
	}
	fmt.Println("(§4.6: once R != QxS, hash-division discards non-matching tuples early and wins)")
	return nil
}

func runDuplicates(args []string) error {
	fs := flag.NewFlagSet("duplicates", flag.ContinueOnError)
	s := fs.Int("s", 25, "|S| divisor tuples")
	q := fs.Int("q", 100, "quotient candidates")
	geometry := fs.String("geometry", "analytic", "page geometry")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := configFor(*geometry)
	if err != nil {
		return err
	}
	points, err := bench.DuplicateSweep(*s, *q, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("Duplicate sweep (|S|=%d, |Q|=%d, duplicate handling ON): total ms\n", *s, *q)
	fmt.Printf("%-8s", "dup")
	for _, c := range points[0].Cells {
		fmt.Printf(" %14s", c.Alg)
	}
	fmt.Println()
	for _, p := range points {
		fmt.Printf("%-8d", p.DuplicateFactor)
		for _, c := range p.Cells {
			fmt.Printf(" %14.0f", c.TotalMS())
		}
		fmt.Println()
	}
	fmt.Println("(hash-division ignores duplicates; sort-based methods pay growing sort costs,")
	fmt.Println(" hash aggregation pays a memory-hungry duplicate elimination first)")
	return nil
}

func runCrossover(args []string) error {
	fs := flag.NewFlagSet("crossover", flag.ContinueOnError)
	s := fs.Int("s", 25, "|S| divisor tuples")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rValues := []int{500, 1000, 5000, 10000, 50000, 100000, 500000}
	series := costmodel.CostSeries(*s, rValues)
	fmt.Printf("Analytical cost vs |R| at |S|=%d (ms; |Q| = |R|/|S|)\n", *s)
	fmt.Printf("%10s", "|R|")
	for _, n := range costmodel.ColumnNames {
		fmt.Printf(" %14s", n)
	}
	fmt.Printf(" %14s\n", "naive/hashdiv")
	for _, pt := range series {
		fmt.Printf("%10d", pt.R)
		for _, c := range pt.Costs {
			fmt.Printf(" %14.0f", c)
		}
		fmt.Printf(" %14.2f\n", pt.Costs[0]/pt.Costs[5])
	}
	fmt.Println("\nQuotient-partitioned hash-division overhead (§3.4 extension, |R| = 10000):")
	p := costmodel.PaperParams(*s, 10000 / *s)
	for _, k := range []int{1, 2, 4, 8, 16} {
		fmt.Printf("  k=%-3d %14.0f ms\n", k, p.PartitionedHashDivisionCost(k))
	}
	fmt.Println("\nOut-of-core analytic model (|S|=|Q|=400): recursive partitioning vs restart loop")
	big := costmodel.PaperParams(400, 400)
	fmt.Printf("  %8s %14s %14s %8s\n", "budget", "recursive ms", "restart ms", "ratio")
	for _, b := range []float64{64, 32, 16, 8, 4, 2} {
		rec := big.RecursiveHashDivisionCost(b, 8)
		restart := big.RestartEscalationCost(b, 64)
		fmt.Printf("  %7.0fp %14.0f %14.0f %8.2f\n", b, rec, restart, restart/rec)
	}
	fmt.Println("(each budget halving costs the restart loop another abandoned full scan;")
	fmt.Println(" divbench spill measures the same comparison on real tables)")
	return nil
}

func runOverflow(args []string) error {
	fs := flag.NewFlagSet("overflow", flag.ContinueOnError)
	budgetKB := fs.Int("budget", 16, "hash table memory budget in KB")
	candidates := fs.Int("q", 2000, "quotient candidates")
	s := fs.Int("s", 10, "|S|")
	if err := fs.Parse(args); err != nil {
		return err
	}
	inst, err := workload.Generate(workload.PaperCase(*s, *candidates, 1))
	if err != nil {
		return err
	}
	env := testEnvForCmd()
	sp := division.Spec{
		Dividend:    exec.NewMemScan(workload.TranscriptSchema, inst.Dividend),
		Divisor:     exec.NewMemScan(workload.CourseSchema, inst.Divisor),
		DivisorCols: []int{1},
	}
	fmt.Printf("Hash table overflow: |S|=%d, |Q|=%d, |R|=%d, budget=%d KB\n",
		*s, *candidates, len(inst.Dividend), *budgetKB)
	qts, k, err := division.DivideWithBudget(sp, env, *budgetKB*1024, 0)
	if err != nil {
		return err
	}
	fmt.Printf("quotient tuples: %d (expected %d)\n", len(qts), len(inst.QuotientIDs))
	fmt.Printf("partitions needed: %d (quotient partitioning, first cluster in memory per §3.4)\n", k)
	return nil
}

// parallelScalingPoint is one measurement in the parallel_scaling section.
type parallelScalingPoint struct {
	Strategy string  `json:"strategy"`
	Path     string  `json:"path"`
	Workers  int     `json:"workers"`
	Ns       int64   `json:"ns"`      // min wall clock over reps
	Speedup  float64 `json:"speedup"` // serial_ns / ns
}

func runParallel(args []string) error {
	fs := flag.NewFlagSet("parallel", flag.ContinueOnError)
	s := fs.Int("s", 100, "|S|")
	q := fs.Int("q", 400, "quotient candidates")
	noise := fs.Int("noise", 5, "non-matching tuples per candidate")
	workersFlag := fs.String("workers", "1,2,4,8", "comma-separated worker counts")
	reps := fs.Int("reps", 3, "repetitions per point; minimum wall clock wins")
	jsonOut := fs.Bool("json", false, "merge a parallel_scaling section into "+benchJSONFile)
	check := fs.Bool("check", false, "exit nonzero unless the morsel path at 4 workers beats the serial baseline (skipped when GOMAXPROCS < 2)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	workerCounts, err := parseSizes(*workersFlag)
	if err != nil {
		return err
	}
	inst, err := workload.Generate(workload.Config{
		DivisorTuples:      *s,
		QuotientCandidates: *q,
		FullFraction:       0.5,
		MatchFraction:      0.8,
		NoisePerCandidate:  *noise,
		Shuffle:            true,
		Seed:               1,
	})
	if err != nil {
		return err
	}
	spec := func() division.Spec {
		return division.Spec{
			Dividend:    exec.NewMemScan(workload.TranscriptSchema, inst.Dividend),
			Divisor:     exec.NewMemScan(workload.CourseSchema, inst.Divisor),
			DivisorCols: []int{1},
		}
	}

	// Serial baseline: batch-at-a-time hash-division, min wall over reps —
	// the denominator every speedup is measured against.
	serialNs := int64(0)
	for r := 0; r < *reps; r++ {
		op, err := division.New(division.AlgHashDivision, spec(), division.Env{
			ExpectedDivisor:  *s,
			ExpectedQuotient: *q,
		})
		if err != nil {
			return err
		}
		start := time.Now()
		if _, err := exec.Drain(op); err != nil {
			return err
		}
		if ns := time.Since(start).Nanoseconds(); r == 0 || ns < serialNs {
			serialNs = ns
		}
	}

	fmt.Printf("Parallel hash-division scaling (§6): |S|=%d, candidates=%d, |R|=%d, GOMAXPROCS=%d\n",
		*s, *q, len(inst.Dividend), runtime.GOMAXPROCS(0))
	fmt.Printf("serial batch hash-division baseline: %s (min of %d)\n",
		time.Duration(serialNs).Round(time.Microsecond), *reps)
	fmt.Printf("%-24s %-12s %8s %10s %8s %12s\n", "strategy", "path", "workers", "elapsed", "speedup", "bytes")

	combos := []struct {
		strategy division.PartitionStrategy
		path     parallel.Path
	}{
		{division.QuotientPartitioning, parallel.PathMorsel},
		{division.QuotientPartitioning, parallel.PathCoordinator},
		{division.QuotientPartitioning, parallel.PathSharedTable},
		{division.DivisorPartitioning, parallel.PathMorsel},
		{division.DivisorPartitioning, parallel.PathCoordinator},
	}
	var points []parallelScalingPoint
	for _, c := range combos {
		for _, workers := range workerCounts {
			best := int64(0)
			var bytes int64
			for r := 0; r < *reps; r++ {
				res, err := parallel.Divide(spec(), parallel.Config{
					Workers:          workers,
					Strategy:         c.strategy,
					Path:             c.path,
					ExpectedQuotient: *q,
				})
				if err != nil {
					return err
				}
				bytes = res.Network.BytesShipped
				if ns := res.Elapsed.Nanoseconds(); r == 0 || ns < best {
					best = ns
				}
			}
			p := parallelScalingPoint{
				Strategy: c.strategy.String(),
				Path:     c.path.String(),
				Workers:  workers,
				Ns:       best,
				Speedup:  float64(serialNs) / float64(best),
			}
			points = append(points, p)
			fmt.Printf("%-24s %-12s %8d %10s %8.2f %12d\n",
				p.Strategy, p.Path, workers,
				time.Duration(best).Round(time.Microsecond), p.Speedup, bytes)
		}
	}

	if *jsonOut {
		section := map[string]any{
			"s":          *s,
			"q":          *q,
			"r":          len(inst.Dividend),
			"reps":       *reps,
			"gomaxprocs": runtime.GOMAXPROCS(0),
			"serial_ns":  serialNs,
			"points":     points,
		}
		if err := writeJSONSection(benchJSONFile, "parallel_scaling", section); err != nil {
			return err
		}
		fmt.Printf("(wrote parallel_scaling section to %s)\n", benchJSONFile)
	}

	if *check {
		if runtime.GOMAXPROCS(0) < 2 {
			fmt.Println("(-check skipped: GOMAXPROCS < 2, no parallelism available)")
			return nil
		}
		var morsel4 *parallelScalingPoint
		for i := range points {
			p := &points[i]
			if p.Strategy == division.QuotientPartitioning.String() &&
				p.Path == parallel.PathMorsel.String() && p.Workers == 4 {
				morsel4 = p
			}
		}
		if morsel4 == nil {
			return fmt.Errorf("parallel -check: no morsel point at 4 workers (add 4 to -workers)")
		}
		if morsel4.Speedup <= 1 {
			return fmt.Errorf("parallel -check: morsel path at 4 workers is not faster than serial (speedup %.2f)", morsel4.Speedup)
		}
		fmt.Printf("(-check passed: morsel speedup at 4 workers = %.2f)\n", morsel4.Speedup)
	}
	return nil
}

func runExample() error {
	// Figure 2: Courses {Database1, Database2}; Transcript {(Ann,
	// Database1), (Barb, Database2), (Ann, Database2), (Barb, Optics)}.
	ds := tuple.NewSchema(tuple.CharField("student", 8), tuple.CharField("course", 12))
	ss := tuple.NewSchema(tuple.CharField("course", 12))
	transcript := []tuple.Tuple{
		ds.MustMake("Ann", "Database1"),
		ds.MustMake("Barb", "Database2"),
		ds.MustMake("Ann", "Database2"),
		ds.MustMake("Barb", "Optics"),
	}
	courses := []tuple.Tuple{ss.MustMake("Database1"), ss.MustMake("Database2")}

	fmt.Println("Figure 2 worked example: students who have taken all database courses")
	fmt.Println("Courses (divisor):")
	for i, c := range courses {
		fmt.Printf("  divisor number %d: %s\n", i, ss.Format(c))
	}
	fmt.Println("Transcript (dividend):")
	for _, t := range transcript {
		fmt.Printf("  %s\n", ds.Format(t))
	}
	sp := division.Spec{
		Dividend:    exec.NewMemScan(ds, transcript),
		Divisor:     exec.NewMemScan(ss, courses),
		DivisorCols: []int{1},
	}
	for _, alg := range []division.Algorithm{
		division.AlgNaive, division.AlgSortAggJoin, division.AlgHashAggJoin, division.AlgHashDivision,
	} {
		qts, err := division.Run(alg, sp, testEnvForCmd())
		if err != nil {
			return err
		}
		qs := sp.QuotientSchema()
		var names []string
		for _, q := range qts {
			names = append(names, qs.Char(q, 0))
		}
		fmt.Printf("%-14s -> quotient %v\n", alg, names)
	}
	fmt.Println("(Barb, Optics) has no divisor match and is discarded; only Ann's bit map is all ones.")
	return nil
}

func testEnvForCmd() division.Env {
	return division.Env{
		Pool:    buffer.New(4 << 20),
		TempDev: disk.NewDevice("temp", disk.PaperRunPageSize),
	}
}
