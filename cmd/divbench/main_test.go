package main

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
	"time"
)

func TestParseSizes(t *testing.T) {
	sizes, err := parseSizes("25, 100,400")
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 3 || sizes[0] != 25 || sizes[2] != 400 {
		t.Errorf("sizes = %v", sizes)
	}
	if _, err := parseSizes("25,x"); err == nil {
		t.Error("bad size accepted")
	}
}

func TestConfigFor(t *testing.T) {
	paper, err := configFor("paper")
	if err != nil {
		t.Fatal(err)
	}
	if paper.PageSize != 8192 {
		t.Errorf("paper page size = %d", paper.PageSize)
	}
	analytic, err := configFor("analytic")
	if err != nil {
		t.Fatal(err)
	}
	if analytic.PageSize != 84 {
		t.Errorf("analytic page size = %d", analytic.PageSize)
	}
	if _, err := configFor("weird"); err == nil {
		t.Error("unknown geometry accepted")
	}
}

func TestRunExample(t *testing.T) {
	if err := runExample(); err != nil {
		t.Fatal(err)
	}
}

func TestRunSubcommandsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subcommand smoke in short mode")
	}
	if err := runTable4([]string{"-sizes", "25", "-geometry", "analytic"}); err != nil {
		t.Fatal(err)
	}
	if err := runOverflow([]string{"-q", "500", "-budget", "12"}); err != nil {
		t.Fatal(err)
	}
	if err := runSweep([]string{"-s", "10", "-q", "40"}); err != nil {
		t.Fatal(err)
	}
	if err := runParallel([]string{"-s", "20", "-q", "50", "-noise", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteJSONSectionMerges(t *testing.T) {
	path := t.TempDir() + "/bench.json"
	if err := writeJSONSection(path, "a", map[string]int{"x": 1}); err != nil {
		t.Fatal(err)
	}
	if err := writeJSONSection(path, "b", map[string]int{"y": 2}); err != nil {
		t.Fatal(err)
	}
	// Rewriting a section must preserve the other one.
	if err := writeJSONSection(path, "a", map[string]int{"x": 3}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]map[string]int
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("unparsable merged file: %v\n%s", err, data)
	}
	if doc["a"]["x"] != 3 || doc["b"]["y"] != 2 {
		t.Errorf("merged doc = %v", doc)
	}
}

// TestProfileSectionPreservesSiblingsAndIsDeterministic checks that writing
// the profile section leaves previously recorded table4 and batch_ablation
// sections byte-for-byte intact, and that the profile section itself is
// identical across runs (no wall-clock times or other nondeterminism leaks
// into the JSON).
func TestProfileSectionPreservesSiblingsAndIsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("profile section smoke in short mode")
	}
	dir := t.TempDir()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(old)

	// Seed the results file with stand-in sibling sections.
	if err := writeJSONSection(benchJSONFile, "table4", map[string]any{"geometry": "paper", "cells": []int{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := writeJSONSection(benchJSONFile, "batch_ablation", map[string]any{"reps": 3}); err != nil {
		t.Fatal(err)
	}
	sections := func() map[string]json.RawMessage {
		data, err := os.ReadFile(benchJSONFile)
		if err != nil {
			t.Fatal(err)
		}
		doc := map[string]json.RawMessage{}
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatal(err)
		}
		return doc
	}
	before := sections()

	if err := runTable4([]string{"-sizes", "10", "-geometry", "analytic", "-profile"}); err != nil {
		t.Fatal(err)
	}
	after := sections()
	for _, name := range []string{"table4", "batch_ablation"} {
		if !bytes.Equal(before[name], after[name]) {
			t.Errorf("section %q changed:\nbefore: %s\nafter:  %s", name, before[name], after[name])
		}
	}
	first, ok := after["profile"]
	if !ok {
		t.Fatal("profile section missing")
	}

	if err := runTable4([]string{"-sizes", "10", "-geometry", "analytic", "-profile"}); err != nil {
		t.Fatal(err)
	}
	if second := sections()["profile"]; !bytes.Equal(first, second) {
		t.Errorf("profile section differs across runs:\nfirst:  %s\nsecond: %s", first, second)
	}

	var section struct {
		S          int `json:"s"`
		Algorithms []struct {
			Algorithm    string         `json:"algorithm"`
			QuotientRows int            `json:"quotient_rows"`
			Tree         map[string]any `json:"tree"`
		} `json:"algorithms"`
	}
	if err := json.Unmarshal(first, &section); err != nil {
		t.Fatal(err)
	}
	if section.S != 10 || len(section.Algorithms) != 6 {
		t.Errorf("profile section shape: s=%d, %d algorithms", section.S, len(section.Algorithms))
	}
	for _, a := range section.Algorithms {
		if a.QuotientRows == 0 {
			t.Errorf("%s: zero quotient rows in profile workload", a.Algorithm)
		}
		if a.Tree == nil {
			t.Errorf("%s: missing span tree", a.Algorithm)
		}
	}
}

// TestParallelScalingSectionPreservesSiblings checks that writing the
// parallel_scaling section leaves previously recorded sections byte-for-byte
// intact and that the section has the expected shape (serial baseline, every
// strategy × path combination, speedups populated).
func TestParallelScalingSectionPreservesSiblings(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel scaling smoke in short mode")
	}
	dir := t.TempDir()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(old)

	if err := writeJSONSection(benchJSONFile, "table4", map[string]any{"geometry": "paper", "cells": []int{1, 2}}); err != nil {
		t.Fatal(err)
	}
	sections := func() map[string]json.RawMessage {
		data, err := os.ReadFile(benchJSONFile)
		if err != nil {
			t.Fatal(err)
		}
		doc := map[string]json.RawMessage{}
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatal(err)
		}
		return doc
	}
	before := sections()

	err = runParallel([]string{"-s", "20", "-q", "60", "-noise", "2", "-workers", "1,2", "-reps", "1", "-json"})
	if err != nil {
		t.Fatal(err)
	}
	after := sections()
	if !bytes.Equal(before["table4"], after["table4"]) {
		t.Errorf("table4 section changed:\nbefore: %s\nafter:  %s", before["table4"], after["table4"])
	}
	raw, ok := after["parallel_scaling"]
	if !ok {
		t.Fatal("parallel_scaling section missing")
	}
	var section struct {
		S          int   `json:"s"`
		R          int   `json:"r"`
		GOMAXPROCS int   `json:"gomaxprocs"`
		SerialNs   int64 `json:"serial_ns"`
		Points     []struct {
			Strategy string  `json:"strategy"`
			Path     string  `json:"path"`
			Workers  int     `json:"workers"`
			Ns       int64   `json:"ns"`
			Speedup  float64 `json:"speedup"`
		} `json:"points"`
	}
	if err := json.Unmarshal(raw, &section); err != nil {
		t.Fatal(err)
	}
	if section.S != 20 || section.R == 0 || section.SerialNs == 0 || section.GOMAXPROCS == 0 {
		t.Errorf("section header: %+v", section)
	}
	// 5 strategy×path combos × 2 worker counts.
	if len(section.Points) != 10 {
		t.Fatalf("got %d points, want 10", len(section.Points))
	}
	paths := map[string]bool{}
	for _, p := range section.Points {
		paths[p.Path] = true
		if p.Ns == 0 || p.Speedup == 0 {
			t.Errorf("unpopulated point %+v", p)
		}
	}
	for _, want := range []string{"morsel", "coordinator", "shared-table"} {
		if !paths[want] {
			t.Errorf("no points for path %q", want)
		}
	}
}

func TestRunBatchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("batch ablation smoke in short mode")
	}
	dir := t.TempDir()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(old)
	err = runBatch([]string{"-sizes", "25", "-batchsizes", "64,256", "-reps", "1", "-geometry", "analytic", "-json"})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(benchJSONFile)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["batch_ablation"]; !ok {
		t.Errorf("missing batch_ablation section in %s", data)
	}
}

func TestIOOverlapSectionPreservesSiblings(t *testing.T) {
	if testing.Short() {
		t.Skip("io overlap smoke in short mode")
	}
	dir := t.TempDir()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(old)

	if err := writeJSONSection(benchJSONFile, "table4", map[string]any{"geometry": "paper", "cells": []int{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := writeJSONSection(benchJSONFile, "parallel_scaling", map[string]any{"s": 20, "points": []int{3}}); err != nil {
		t.Fatal(err)
	}
	sections := func() map[string]json.RawMessage {
		data, err := os.ReadFile(benchJSONFile)
		if err != nil {
			t.Fatal(err)
		}
		doc := map[string]json.RawMessage{}
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatal(err)
		}
		return doc
	}
	before := sections()

	err = runIO([]string{"-pages", "8", "-scale", "0.01", "-shards", "1,2",
		"-workers", "2", "-iters", "1", "-reps", "1", "-json"})
	if err != nil {
		t.Fatal(err)
	}
	after := sections()
	for _, sib := range []string{"table4", "parallel_scaling"} {
		if !bytes.Equal(before[sib], after[sib]) {
			t.Errorf("%s section changed:\nbefore: %s\nafter:  %s", sib, before[sib], after[sib])
		}
	}
	raw, ok := after["io_overlap"]
	if !ok {
		t.Fatal("io_overlap section missing")
	}
	var section struct {
		Pages       int     `json:"pages"`
		PageSize    int     `json:"page_size"`
		ReadDelayNs int64   `json:"read_delay_ns"`
		Scale       float64 `json:"scale"`
		Window      int     `json:"window"`
		Depth       int     `json:"depth"`
		GOMAXPROCS  int     `json:"gomaxprocs"`
		Scan        struct {
			SyncNs         int64 `json:"sync_ns"`
			ReadaheadNs    int64 `json:"readahead_ns"`
			Fixes          int   `json:"fixes"`
			PrefetchIssued int   `json:"prefetch_issued"`
		} `json:"scan"`
		ShardSweep struct {
			Workers   int `json:"workers"`
			PoolPages int `json:"pool_pages"`
			Points    []struct {
				Shards int   `json:"shards"`
				Ns     int64 `json:"ns"`
			} `json:"points"`
		} `json:"shard_sweep"`
	}
	if err := json.Unmarshal(raw, &section); err != nil {
		t.Fatal(err)
	}
	if section.Pages != 8 || section.PageSize == 0 || section.ReadDelayNs == 0 ||
		section.Window == 0 || section.Depth == 0 || section.GOMAXPROCS == 0 {
		t.Errorf("section header: %+v", section)
	}
	if section.Scan.SyncNs == 0 || section.Scan.ReadaheadNs == 0 || section.Scan.Fixes == 0 ||
		section.Scan.PrefetchIssued == 0 {
		t.Errorf("scan result unpopulated: %+v", section.Scan)
	}
	if section.ShardSweep.Workers != 2 || section.ShardSweep.PoolPages == 0 {
		t.Errorf("shard sweep header: %+v", section.ShardSweep)
	}
	if len(section.ShardSweep.Points) != 2 {
		t.Fatalf("shard sweep has %d points, want 2", len(section.ShardSweep.Points))
	}
	for _, p := range section.ShardSweep.Points {
		if p.Shards == 0 || p.Ns == 0 {
			t.Errorf("unpopulated sweep point %+v", p)
		}
	}
}

// TestMemoryPressureSectionPreservesSiblings runs the spill sweep with
// -json -check on a reduced workload: siblings must stay byte-for-byte
// intact, the section must have the expected shape, and the -check gate
// (exact quotients, spill engaged, smooth degradation) must hold.
func TestMemoryPressureSectionPreservesSiblings(t *testing.T) {
	if testing.Short() {
		t.Skip("memory pressure smoke in short mode")
	}
	dir := t.TempDir()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(old)

	if err := writeJSONSection(benchJSONFile, "table4", map[string]any{"geometry": "paper", "cells": []int{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := writeJSONSection(benchJSONFile, "wal_commit", map[string]any{"points": []int{3}}); err != nil {
		t.Fatal(err)
	}
	sections := func() map[string]json.RawMessage {
		data, err := os.ReadFile(benchJSONFile)
		if err != nil {
			t.Fatal(err)
		}
		doc := map[string]json.RawMessage{}
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatal(err)
		}
		return doc
	}
	before := sections()

	// The budget list stops at 5%: the -race builds of this test slow the
	// deep-recursion points far more than the in-memory ones, so the 1%
	// point of the CI sweep (go run, uninstrumented) would trip the
	// smoothness gate here on instrumentation overhead, not on real cost.
	err = runSpill([]string{"-s", "8", "-q", "600", "-budgets", "100,25,5",
		"-reps", "1", "-json", "-check"})
	if err != nil {
		t.Fatal(err)
	}
	after := sections()
	for _, sib := range []string{"table4", "wal_commit"} {
		if !bytes.Equal(before[sib], after[sib]) {
			t.Errorf("%s section changed:\nbefore: %s\nafter:  %s", sib, before[sib], after[sib])
		}
	}
	raw, ok := after["memory_pressure"]
	if !ok {
		t.Fatal("memory_pressure section missing")
	}
	var section struct {
		S          int    `json:"s"`
		R          int    `json:"r"`
		Strategy   string `json:"strategy"`
		InputBytes int    `json:"input_bytes"`
		Points     []struct {
			Pct          int   `json:"pct"`
			BudgetBytes  int   `json:"budget_bytes"`
			Ns           int64 `json:"ns"`
			QuotientRows int   `json:"quotient_rows"`
			Attempts     int   `json:"attempts"`
			MaxDepth     int   `json:"max_depth"`
			SpillBytes   int64 `json:"spill_bytes"`
			RestartOK    bool  `json:"restart_ok"`
		} `json:"points"`
	}
	if err := json.Unmarshal(raw, &section); err != nil {
		t.Fatal(err)
	}
	if section.S != 8 || section.R == 0 || section.InputBytes == 0 || section.Strategy != "quotient" {
		t.Errorf("section header: %+v", section)
	}
	if len(section.Points) != 3 {
		t.Fatalf("got %d points, want 3", len(section.Points))
	}
	if p := section.Points[0]; p.Pct != 100 || p.SpillBytes != 0 {
		t.Errorf("full-budget point should not spill: %+v", p)
	}
	spilled := false
	for _, p := range section.Points {
		if p.Ns == 0 || p.BudgetBytes == 0 || p.QuotientRows == 0 || p.Attempts == 0 {
			t.Errorf("unpopulated point %+v", p)
		}
		if p.SpillBytes > 0 {
			spilled = true
		}
	}
	if !spilled {
		t.Error("no sweep point spilled")
	}
}

// TestCheckSpillSweep exercises the gate logic on synthetic curves.
func TestCheckSpillSweep(t *testing.T) {
	ms := int64(time.Millisecond)
	mk := func(pct int, ns int64, spill int64) spillPoint {
		p := spillPoint{Pct: pct, BudgetBytes: pct, Ns: ns, SpillBytes: spill}
		if spill > 0 {
			p.SpilledParts = 1
		}
		return p
	}
	smooth := []spillPoint{mk(100, 2*ms, 0), mk(50, 3*ms, 1), mk(25, 5*ms, 2), mk(10, 7*ms, 3)}
	if err := checkSpillSweep(smooth); err != nil {
		t.Errorf("smooth curve rejected: %v", err)
	}
	if err := checkSpillSweep(smooth[:1]); err == nil {
		t.Error("single point accepted")
	}
	unordered := []spillPoint{mk(50, 2*ms, 0), mk(100, 3*ms, 1)}
	if err := checkSpillSweep(unordered); err == nil {
		t.Error("non-decreasing budget order accepted")
	}
	fullSpills := []spillPoint{mk(100, 2*ms, 9), mk(50, 3*ms, 9)}
	if err := checkSpillSweep(fullSpills); err == nil {
		t.Error("spill at the full budget accepted")
	}
	noSpill := []spillPoint{mk(100, 2*ms, 0), mk(50, 3*ms, 0)}
	if err := checkSpillSweep(noSpill); err == nil {
		t.Error("sweep without any spill accepted")
	}
	cliff := []spillPoint{mk(100, 2*ms, 0), mk(50, 20*ms, 1)}
	if err := checkSpillSweep(cliff); err == nil {
		t.Error("10x step cliff accepted")
	}
	creep := []spillPoint{mk(100, 2*ms, 0), mk(50, 7*ms, 1), mk(25, 20*ms, 1)}
	if err := checkSpillSweep(creep); err == nil {
		t.Error("10x total growth accepted")
	}
	noisy := []spillPoint{mk(100, 10_000, 0), mk(50, 90_000, 1), mk(25, 2*ms, 1)}
	if err := checkSpillSweep(noisy); err != nil {
		t.Errorf("sub-noise-floor jitter rejected: %v", err)
	}
}

func TestWALCommitSectionPreservesSiblings(t *testing.T) {
	if testing.Short() {
		t.Skip("wal commit smoke in short mode")
	}
	dir := t.TempDir()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(old)

	if err := writeJSONSection(benchJSONFile, "table4", map[string]any{"geometry": "paper", "cells": []int{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := writeJSONSection(benchJSONFile, "io_overlap", map[string]any{"pages": 8, "scale": 0.01}); err != nil {
		t.Fatal(err)
	}
	sections := func() map[string]json.RawMessage {
		data, err := os.ReadFile(benchJSONFile)
		if err != nil {
			t.Fatal(err)
		}
		doc := map[string]json.RawMessage{}
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatal(err)
		}
		return doc
	}
	before := sections()

	err = runWAL([]string{"-appenders", "1,4", "-windows", "0",
		"-records", "20", "-scale", "0.01", "-reps", "1", "-json"})
	if err != nil {
		t.Fatal(err)
	}
	after := sections()
	for _, sib := range []string{"table4", "io_overlap"} {
		if !bytes.Equal(before[sib], after[sib]) {
			t.Errorf("%s section changed:\nbefore: %s\nafter:  %s", sib, before[sib], after[sib])
		}
	}
	raw, ok := after["wal_commit"]
	if !ok {
		t.Fatal("wal_commit section missing")
	}
	var section struct {
		RecordsPerAppender int     `json:"records_per_appender"`
		PayloadBytes       int     `json:"payload_bytes"`
		Scale              float64 `json:"scale"`
		SyncDelayNs        int64   `json:"sync_delay_ns"`
		Points             []struct {
			Appenders      int     `json:"appenders"`
			WindowUs       int     `json:"window_us"`
			Ns             int64   `json:"ns"`
			Appends        int     `json:"appends"`
			Syncs          int     `json:"syncs"`
			SyncsPerAppend float64 `json:"syncs_per_append"`
		} `json:"points"`
	}
	if err := json.Unmarshal(raw, &section); err != nil {
		t.Fatal(err)
	}
	if section.RecordsPerAppender != 20 || section.SyncDelayNs <= 0 {
		t.Errorf("section shape off: %+v", section)
	}
	if len(section.Points) != 2 {
		t.Fatalf("%d sweep points, want 2", len(section.Points))
	}
	for _, p := range section.Points {
		if p.Appends != p.Appenders*20 {
			t.Errorf("point %+v: appends != appenders*records", p)
		}
		if p.Syncs <= 0 || p.SyncsPerAppend <= 0 {
			t.Errorf("point %+v: sync counters missing", p)
		}
	}
}
