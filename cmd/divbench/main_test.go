package main

import (
	"testing"
)

func TestParseSizes(t *testing.T) {
	sizes, err := parseSizes("25, 100,400")
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 3 || sizes[0] != 25 || sizes[2] != 400 {
		t.Errorf("sizes = %v", sizes)
	}
	if _, err := parseSizes("25,x"); err == nil {
		t.Error("bad size accepted")
	}
}

func TestConfigFor(t *testing.T) {
	paper, err := configFor("paper")
	if err != nil {
		t.Fatal(err)
	}
	if paper.PageSize != 8192 {
		t.Errorf("paper page size = %d", paper.PageSize)
	}
	analytic, err := configFor("analytic")
	if err != nil {
		t.Fatal(err)
	}
	if analytic.PageSize != 84 {
		t.Errorf("analytic page size = %d", analytic.PageSize)
	}
	if _, err := configFor("weird"); err == nil {
		t.Error("unknown geometry accepted")
	}
}

func TestRunExample(t *testing.T) {
	if err := runExample(); err != nil {
		t.Fatal(err)
	}
}

func TestRunSubcommandsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subcommand smoke in short mode")
	}
	if err := runTable4([]string{"-sizes", "25", "-geometry", "analytic"}); err != nil {
		t.Fatal(err)
	}
	if err := runOverflow([]string{"-q", "500", "-budget", "12"}); err != nil {
		t.Fatal(err)
	}
	if err := runSweep([]string{"-s", "10", "-q", "40"}); err != nil {
		t.Fatal(err)
	}
	if err := runParallel([]string{"-s", "20", "-q", "50", "-noise", "2"}); err != nil {
		t.Fatal(err)
	}
}
