package main

import (
	"encoding/json"
	"os"
	"testing"
)

func TestParseSizes(t *testing.T) {
	sizes, err := parseSizes("25, 100,400")
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 3 || sizes[0] != 25 || sizes[2] != 400 {
		t.Errorf("sizes = %v", sizes)
	}
	if _, err := parseSizes("25,x"); err == nil {
		t.Error("bad size accepted")
	}
}

func TestConfigFor(t *testing.T) {
	paper, err := configFor("paper")
	if err != nil {
		t.Fatal(err)
	}
	if paper.PageSize != 8192 {
		t.Errorf("paper page size = %d", paper.PageSize)
	}
	analytic, err := configFor("analytic")
	if err != nil {
		t.Fatal(err)
	}
	if analytic.PageSize != 84 {
		t.Errorf("analytic page size = %d", analytic.PageSize)
	}
	if _, err := configFor("weird"); err == nil {
		t.Error("unknown geometry accepted")
	}
}

func TestRunExample(t *testing.T) {
	if err := runExample(); err != nil {
		t.Fatal(err)
	}
}

func TestRunSubcommandsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subcommand smoke in short mode")
	}
	if err := runTable4([]string{"-sizes", "25", "-geometry", "analytic"}); err != nil {
		t.Fatal(err)
	}
	if err := runOverflow([]string{"-q", "500", "-budget", "12"}); err != nil {
		t.Fatal(err)
	}
	if err := runSweep([]string{"-s", "10", "-q", "40"}); err != nil {
		t.Fatal(err)
	}
	if err := runParallel([]string{"-s", "20", "-q", "50", "-noise", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteJSONSectionMerges(t *testing.T) {
	path := t.TempDir() + "/bench.json"
	if err := writeJSONSection(path, "a", map[string]int{"x": 1}); err != nil {
		t.Fatal(err)
	}
	if err := writeJSONSection(path, "b", map[string]int{"y": 2}); err != nil {
		t.Fatal(err)
	}
	// Rewriting a section must preserve the other one.
	if err := writeJSONSection(path, "a", map[string]int{"x": 3}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]map[string]int
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("unparsable merged file: %v\n%s", err, data)
	}
	if doc["a"]["x"] != 3 || doc["b"]["y"] != 2 {
		t.Errorf("merged doc = %v", doc)
	}
}

func TestRunBatchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("batch ablation smoke in short mode")
	}
	dir := t.TempDir()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(old)
	err = runBatch([]string{"-sizes", "25", "-batchsizes", "64,256", "-reps", "1", "-geometry", "analytic", "-json"})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(benchJSONFile)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["batch_ablation"]; !ok {
		t.Errorf("missing batch_ablation section in %s", data)
	}
}
