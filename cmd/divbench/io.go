package main

// divbench io — measures what the sharded buffer pool and asynchronous
// read-ahead buy on a device with realistic latency. Two experiments:
//
//  1. Scan overlap: a sequential page scan over a disk.Latency device (delay
//     derived from the paper's Table 3 per-transfer cost), synchronous vs.
//     with the prefetcher staging pages ahead of the cursor. With read-ahead
//     the device sleeps overlap each other and the consumer, so wall clock
//     drops toward scan-CPU + latency/depth.
//  2. Shard sweep: W workers dirtying a page set several times larger than
//     the pool, so nearly every fix evicts a dirty frame — and a victim's
//     write-back holds its shard's lock across the device write. One shard
//     serializes every write-back behind a single lock; N shards let them
//     overlap, which wall clock shows directly on the latency device.
//
// Results merge into the io_overlap section of BENCH_divbench.json,
// preserving sibling sections byte-for-byte.

import (
	"flag"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/buffer"
	"repro/internal/disk"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/tuple"
)

// ioScanResult is the scan-overlap half of the io_overlap JSON section.
type ioScanResult struct {
	SyncNs          int64   `json:"sync_ns"`
	ReadaheadNs     int64   `json:"readahead_ns"`
	Speedup         float64 `json:"speedup"`
	Fixes           int     `json:"fixes"`
	PrefetchIssued  int     `json:"prefetch_issued"`
	PrefetchHits    int     `json:"prefetch_hits"`
	PrefetchHitRate float64 `json:"prefetch_hit_rate"`
	PrefetchWasted  int     `json:"prefetch_wasted"`
	PrefetchDropped int     `json:"prefetch_dropped"`
}

// ioShardPoint is one pool configuration in the shard-count sweep.
type ioShardPoint struct {
	Shards    int     `json:"shards"`
	Ns        int64   `json:"ns"`
	SpeedupV1 float64 `json:"speedup_vs_1_shard"`
}

// ioSeedFile fills a heap file with enough records to cover pages pages.
func ioSeedFile(pool *buffer.Pool, dev disk.Dev, pages int) (*storage.File, error) {
	schema := tuple.NewSchema(tuple.CharField("student", 8), tuple.CharField("course", 12))
	f := storage.NewFile(pool, dev, schema, "iobench")
	ap := f.NewAppender()
	for i := 0; i < pages*f.RecordsPerPage(); i++ {
		t := schema.MustMake(fmt.Sprintf("s%06d", i), fmt.Sprintf("c%09d", i))
		if _, err := ap.Append(t); err != nil {
			ap.Close()
			return nil, err
		}
	}
	if err := ap.Close(); err != nil {
		return nil, err
	}
	if err := pool.FlushAll(); err != nil {
		return nil, err
	}
	return f, nil
}

// ioScanOnce drives one full page-at-a-time scan, touching every record
// area byte count so the consumer does token CPU work per page.
func ioScanOnce(f *storage.File) (int, error) {
	ps := f.ScanPages(false)
	defer ps.Close()
	total := 0
	for {
		data, _, _, err := ps.Next()
		if err == io.EOF {
			return total, ps.Close()
		}
		if err != nil {
			return total, err
		}
		total += len(data)
	}
}

func runIO(args []string) error {
	fs := flag.NewFlagSet("io", flag.ContinueOnError)
	pages := fs.Int("pages", 64, "heap-file pages to scan")
	scale := fs.Float64("scale", 0.1, "latency scale: 1.0 = the paper's full per-transfer milliseconds")
	window := fs.Int("window", buffer.DefaultPrefetchWindow, "prefetcher in-flight window")
	depth := fs.Int("depth", buffer.DefaultPrefetchDepth, "scanner read-ahead depth in pages")
	workers := fs.Int("workers", 4, "concurrent writers in the shard sweep")
	shardsFlag := fs.String("shards", "1,2,4,8", "comma-separated shard counts to sweep")
	iters := fs.Int("iters", 2, "passes over the page set per worker per shard-sweep point")
	reps := fs.Int("reps", 3, "repetitions per measurement; minimum wall clock wins")
	gmp := fs.Int("gomaxprocs", 0, "if > 0, set GOMAXPROCS for the run (the shard sweep needs >= 2 to show contention)")
	jsonOut := fs.Bool("json", false, "merge an io_overlap section into "+benchJSONFile)
	check := fs.Bool("check", false, "exit nonzero unless read-ahead beats the synchronous scan with >= 80% prefetch hit rate (skipped when GOMAXPROCS < 2)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *gmp > 0 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(*gmp))
	}
	shardCounts, err := parseSizes(*shardsFlag)
	if err != nil {
		return err
	}

	// ---- Experiment 1: sequential scan, synchronous vs. read-ahead. ----
	base := disk.NewDevice("iobench", disk.PaperPageSize)
	lat := disk.LatencyFromCost(base, disk.PaperCost(), *scale)
	lat.WriteDelay = 0 // loading the file is setup, not the experiment
	pool := buffer.New(4 << 20)
	obs.InstrumentPool(obs.Default, pool)
	f, err := ioSeedFile(pool, lat, *pages)
	if err != nil {
		return err
	}

	measureScan := func() (int64, error) {
		best := int64(0)
		for r := 0; r < *reps; r++ {
			if err := pool.DropClean(); err != nil {
				return 0, err
			}
			pool.ResetStats()
			start := time.Now()
			if _, err := ioScanOnce(f); err != nil {
				return 0, err
			}
			ns := time.Since(start).Nanoseconds()
			pool.ReadAhead().Drain()
			if r == 0 || ns < best {
				best = ns
			}
		}
		return best, nil
	}

	syncNs, err := measureScan()
	if err != nil {
		return err
	}
	pool.EnableReadAhead(*window, *depth)
	raNs, err := measureScan()
	if err != nil {
		return err
	}
	st := pool.Stats() // from the last read-ahead rep (ResetStats per rep)
	pool.DisableReadAhead()

	scan := ioScanResult{
		SyncNs:          syncNs,
		ReadaheadNs:     raNs,
		Speedup:         float64(syncNs) / float64(raNs),
		Fixes:           st.Fixes,
		PrefetchIssued:  st.PrefetchIssued,
		PrefetchHits:    st.PrefetchHits,
		PrefetchWasted:  st.PrefetchWasted,
		PrefetchDropped: st.PrefetchDropped,
	}
	if st.Fixes > 0 {
		scan.PrefetchHitRate = float64(st.PrefetchHits) / float64(st.Fixes)
	}

	fmt.Printf("I/O overlap (latency device: %s/read at scale %g, %d pages of %d bytes, GOMAXPROCS=%d)\n",
		lat.ReadDelay, *scale, *pages, disk.PaperPageSize, runtime.GOMAXPROCS(0))
	fmt.Printf("  synchronous scan : %s (min of %d)\n", time.Duration(syncNs).Round(time.Microsecond), *reps)
	fmt.Printf("  read-ahead scan  : %s (window=%d depth=%d, speedup %.2fx)\n",
		time.Duration(raNs).Round(time.Microsecond), *window, *depth, scan.Speedup)
	fmt.Printf("  prefetch: issued=%d hits=%d (hit rate %.0f%%) wasted=%d dropped=%d over %d fixes\n",
		scan.PrefetchIssued, scan.PrefetchHits, 100*scan.PrefetchHitRate,
		scan.PrefetchWasted, scan.PrefetchDropped, scan.Fixes)

	// ---- Experiment 2: shard-count sweep under evicting writers. ----
	// The page set is 4x the pool budget, so nearly every fix evicts a
	// dirty victim, and the victim's write-back holds its shard lock across
	// the delayed device write. That is the serialization sharding removes:
	// one shard queues every write-back behind one lock, N shards overlap
	// up to min(N, workers) of them.
	sweepPages := *pages
	poolPages := sweepPages / 4
	// Every worker pins one frame at a time; keep at least one more frame
	// evictable or a small run dies of pool exhaustion instead of measuring.
	if poolPages <= *workers {
		poolPages = *workers + 1
	}
	fmt.Printf("shard sweep: %d workers x %d dirtying passes over %d pages through a %d-page pool (%s/write-back)\n",
		*workers, *iters, sweepPages, poolPages, lat.ReadDelay)
	var points []ioShardPoint
	for _, nshards := range shardCounts {
		sbase := disk.NewDevice("shardsweep", disk.PaperPageSize)
		sdev := disk.NewLatency(sbase, 0, 0)
		spool := buffer.NewWithShards(poolPages*disk.PaperPageSize, buffer.LRU, nshards)
		obs.InstrumentPool(obs.Default, spool)
		ext := sbase.AllocExtent(sweepPages)
		// Seed every page through the pool (delay off) so checksums exist.
		for i := 0; i < sweepPages; i++ {
			h, err := spool.Fix(sdev, ext+disk.PageID(i))
			if err != nil {
				return err
			}
			h.MarkDirty()
			if err := h.Unfix(true); err != nil {
				return err
			}
		}
		if err := spool.FlushAll(); err != nil {
			return err
		}
		sdev.WriteDelay = lat.ReadDelay // evictions now pay real write latency
		best := int64(0)
		for r := 0; r < *reps; r++ {
			var wg sync.WaitGroup
			errs := make([]error, *workers)
			start := time.Now()
			for w := 0; w < *workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					off := w * sweepPages / *workers
					for it := 0; it < *iters; it++ {
						for k := 0; k < sweepPages; k++ {
							h, err := spool.Fix(sdev, ext+disk.PageID((off+k)%sweepPages))
							if err != nil {
								errs[w] = err
								return
							}
							h.MarkDirty()
							if err := h.Unfix(true); err != nil {
								errs[w] = err
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
			ns := time.Since(start).Nanoseconds()
			for _, err := range errs {
				if err != nil {
					return err
				}
			}
			if r == 0 || ns < best {
				best = ns
			}
		}
		p := ioShardPoint{Shards: nshards, Ns: best}
		if len(points) > 0 && points[0].Shards == 1 {
			p.SpeedupV1 = float64(points[0].Ns) / float64(best)
		} else if nshards == 1 {
			p.SpeedupV1 = 1
		}
		points = append(points, p)
		fmt.Printf("  shards=%d : %s (%.2fx vs 1 shard)\n",
			nshards, time.Duration(best).Round(time.Microsecond), p.SpeedupV1)
	}

	fmt.Printf("registry: prefetch issued=%d hit=%d wasted=%d dropped=%d evictions=%d\n",
		obs.Default.Get("buffer.prefetch.issued"), obs.Default.Get("buffer.prefetch.hit"),
		obs.Default.Get("buffer.prefetch.wasted"), obs.Default.Get("buffer.prefetch.dropped"),
		obs.Default.Get("buffer.evictions"))

	if *jsonOut {
		section := map[string]any{
			"pages":         *pages,
			"page_size":     disk.PaperPageSize,
			"read_delay_ns": lat.ReadDelay.Nanoseconds(),
			"scale":         *scale,
			"window":        *window,
			"depth":         *depth,
			"reps":          *reps,
			"gomaxprocs":    runtime.GOMAXPROCS(0),
			"scan":          scan,
			"shard_sweep": map[string]any{
				"workers":        *workers,
				"iters":          *iters,
				"sweep_pages":    sweepPages,
				"pool_pages":     poolPages,
				"write_delay_ns": lat.ReadDelay.Nanoseconds(),
				"points":         points,
			},
		}
		if err := writeJSONSection(benchJSONFile, "io_overlap", section); err != nil {
			return err
		}
		fmt.Printf("(wrote io_overlap section to %s)\n", benchJSONFile)
	}

	if *check {
		if runtime.GOMAXPROCS(0) < 2 {
			fmt.Println("(-check skipped: GOMAXPROCS < 2, no overlap available)")
			return nil
		}
		if scan.PrefetchHitRate < 0.8 {
			return fmt.Errorf("io -check: prefetch hit rate %.0f%% below 80%%", 100*scan.PrefetchHitRate)
		}
		if raNs >= syncNs {
			return fmt.Errorf("io -check: read-ahead scan (%s) not faster than synchronous (%s)",
				time.Duration(raNs), time.Duration(syncNs))
		}
		fmt.Printf("(-check passed: %.2fx scan speedup at %.0f%% prefetch hit rate)\n",
			scan.Speedup, 100*scan.PrefetchHitRate)
	}
	return nil
}
