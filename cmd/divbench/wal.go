package main

// divbench wal — measures what group commit buys on the write path. A sweep
// over (concurrent appenders × commit window) runs against a WAL device
// whose Sync pays the paper's Table 3 fsync cost (seek + rotation) at a
// configurable scale. Every appender stages a record and waits for it to be
// durable; with one appender each commit pays a full device sync, while
// concurrent appenders pile into the round a leader already has in flight
// and share its sync. The syncs/append ratio is the figure of merit: it
// falls from 1 toward 1/appenders as batches grow.
//
// Results merge into the wal_commit section of BENCH_divbench.json,
// preserving sibling sections byte-for-byte.

import (
	"bytes"
	"flag"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/disk"
	"repro/internal/wal"
)

// walCommitPoint is one (appenders, window) cell of the group-commit sweep.
type walCommitPoint struct {
	Appenders      int     `json:"appenders"`
	WindowUs       int     `json:"window_us"`
	Ns             int64   `json:"ns"`
	Appends        int     `json:"appends"`
	Syncs          int     `json:"syncs"`
	SyncsPerAppend float64 `json:"syncs_per_append"`
	MeanBatch      float64 `json:"mean_batch"`
	AppendsPerSec  float64 `json:"appends_per_sec"`
}

// walCommitOnce runs one sweep cell: `appenders` goroutines each commit
// `records` payload-sized records against a fresh log on a latency device,
// and the cell reports the log counters plus wall clock.
func walCommitOnce(appenders, records, payloadLen int, window time.Duration, scale float64) (walCommitPoint, error) {
	base := disk.NewDevice("walbench", disk.PaperPageSize)
	lat := disk.LatencyFromCost(base, disk.PaperCost(), scale)
	lat.ReadDelay, lat.WriteDelay = 0, 0 // isolate the fsync cost
	l := wal.New(lat, wal.Options{Window: window})
	if _, err := l.Recover(nil); err != nil {
		return walCommitPoint{}, err
	}
	payload := bytes.Repeat([]byte{0xA5}, payloadLen)

	var wg sync.WaitGroup
	errs := make([]error, appenders)
	start := time.Now()
	for g := 0; g < appenders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < records; i++ {
				if _, err := l.AppendCommit(payload); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	ns := time.Since(start).Nanoseconds()
	for _, err := range errs {
		if err != nil {
			return walCommitPoint{}, err
		}
	}

	st := l.Stats()
	p := walCommitPoint{
		Appenders: appenders,
		WindowUs:  int(window / time.Microsecond),
		Ns:        ns,
		Appends:   st.Appends,
		Syncs:     st.Syncs,
	}
	if st.Appends > 0 {
		p.SyncsPerAppend = float64(st.Syncs) / float64(st.Appends)
		p.AppendsPerSec = float64(st.Appends) / (float64(ns) / float64(time.Second))
	}
	if st.Batches > 0 {
		p.MeanBatch = float64(st.BatchRecords) / float64(st.Batches)
	}
	return p, nil
}

func runWAL(args []string) error {
	fs := flag.NewFlagSet("wal", flag.ContinueOnError)
	appendersFlag := fs.String("appenders", "1,2,4,8", "comma-separated concurrent appender counts")
	windowsFlag := fs.String("windows", "0,500", "comma-separated commit windows in microseconds")
	records := fs.Int("records", 200, "records committed per appender per cell")
	payloadLen := fs.Int("payload", 64, "record payload bytes")
	scale := fs.Float64("scale", 0.05, "fsync cost scale: 1.0 = the paper's full seek+rotation milliseconds")
	reps := fs.Int("reps", 3, "repetitions per cell; minimum wall clock wins")
	jsonOut := fs.Bool("json", false, "merge a wal_commit section into "+benchJSONFile)
	check := fs.Bool("check", false, "exit nonzero unless 8 appenders cut syncs/append by >= 4x vs 1 appender at window 0")
	if err := fs.Parse(args); err != nil {
		return err
	}
	appenderCounts, err := parseSizes(*appendersFlag)
	if err != nil {
		return err
	}
	windows, err := parseSizes(*windowsFlag)
	if err != nil {
		return err
	}

	syncDelay := time.Duration(disk.PaperCost().SyncMS * *scale * float64(time.Millisecond))
	fmt.Printf("WAL group commit (fsync %s at scale %g, %d x %d-byte records per appender, GOMAXPROCS=%d)\n",
		syncDelay, *scale, *records, *payloadLen, runtime.GOMAXPROCS(0))
	fmt.Printf("%10s %10s %12s %8s %14s %10s %14s\n",
		"appenders", "window_us", "wall", "syncs", "syncs/append", "batch", "appends/s")

	var points []walCommitPoint
	for _, w := range windows {
		for _, a := range appenderCounts {
			var best walCommitPoint
			for r := 0; r < *reps; r++ {
				p, err := walCommitOnce(a, *records, *payloadLen, time.Duration(w)*time.Microsecond, *scale)
				if err != nil {
					return err
				}
				if r == 0 || p.Ns < best.Ns {
					best = p
				}
			}
			points = append(points, best)
			fmt.Printf("%10d %10d %12s %8d %14.3f %10.1f %14.0f\n",
				best.Appenders, best.WindowUs, time.Duration(best.Ns).Round(time.Microsecond),
				best.Syncs, best.SyncsPerAppend, best.MeanBatch, best.AppendsPerSec)
		}
	}

	if *jsonOut {
		section := map[string]any{
			"records_per_appender": *records,
			"payload_bytes":        *payloadLen,
			"scale":                *scale,
			"sync_delay_ns":        syncDelay.Nanoseconds(),
			"reps":                 *reps,
			"gomaxprocs":           runtime.GOMAXPROCS(0),
			"points":               points,
		}
		if err := writeJSONSection(benchJSONFile, "wal_commit", section); err != nil {
			return err
		}
		fmt.Printf("(wrote wal_commit section to %s)\n", benchJSONFile)
	}

	if *check {
		// Baseline: one appender committing alone at window 0 (a sync per
		// append). Candidate: the best 8-appender cell over the swept windows.
		var solo, grouped *walCommitPoint
		for i := range points {
			p := &points[i]
			if p.Appenders == 1 && p.WindowUs == 0 {
				solo = p
			}
			if p.Appenders == 8 && (grouped == nil || p.SyncsPerAppend < grouped.SyncsPerAppend) {
				grouped = p
			}
		}
		if solo == nil || grouped == nil {
			return fmt.Errorf("wal -check: sweep must include 1 appender at window 0 and 8 appenders")
		}
		if grouped.SyncsPerAppend > solo.SyncsPerAppend/4 {
			return fmt.Errorf("wal -check: syncs/append %.3f at 8 appenders, need <= %.3f (4x below the %.3f of 1 appender)",
				grouped.SyncsPerAppend, solo.SyncsPerAppend/4, solo.SyncsPerAppend)
		}
		fmt.Printf("(-check passed: syncs/append %.3f -> %.3f, a %.1fx reduction at 8 appenders)\n",
			solo.SyncsPerAppend, grouped.SyncsPerAppend, solo.SyncsPerAppend/grouped.SyncsPerAppend)
	}
	return nil
}
