package main

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
	"time"
)

// TestServerThroughputSectionPreservesSiblings runs the serve load generator
// with -json on a reduced workload: previously recorded sections must stay
// byte-for-byte intact and the server_throughput section must have the
// expected shape (one point per client count, populated latencies, exactly
// one compile per point with every repeat a cache hit).
func TestServerThroughputSectionPreservesSiblings(t *testing.T) {
	if testing.Short() {
		t.Skip("server throughput smoke in short mode")
	}
	dir := t.TempDir()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(old)

	if err := writeJSONSection(benchJSONFile, "table4", map[string]any{"geometry": "paper", "cells": []int{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := writeJSONSection(benchJSONFile, "memory_pressure", map[string]any{"points": []int{3}}); err != nil {
		t.Fatal(err)
	}
	sections := func() map[string]json.RawMessage {
		data, err := os.ReadFile(benchJSONFile)
		if err != nil {
			t.Fatal(err)
		}
		doc := map[string]json.RawMessage{}
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatal(err)
		}
		return doc
	}
	before := sections()

	err = runServe([]string{"-clients", "1,2", "-queries", "4", "-s", "120", "-json"})
	if err != nil {
		t.Fatal(err)
	}
	after := sections()
	for _, sib := range []string{"table4", "memory_pressure"} {
		if !bytes.Equal(before[sib], after[sib]) {
			t.Errorf("%s section changed:\nbefore: %s\nafter:  %s", sib, before[sib], after[sib])
		}
	}
	raw, ok := after["server_throughput"]
	if !ok {
		t.Fatal("server_throughput section missing")
	}
	var section struct {
		S                int `json:"s"`
		Q                int `json:"q"`
		QueriesPerClient int `json:"queries_per_client"`
		MemKB            int `json:"mem_kb"`
		GrantKB          int `json:"grant_kb"`
		GOMAXPROCS       int `json:"gomaxprocs"`
		Points           []struct {
			Clients     int     `json:"clients"`
			Queries     int     `json:"queries"`
			QPS         float64 `json:"qps"`
			P50Micros   int64   `json:"p50_us"`
			P95Micros   int64   `json:"p95_us"`
			P99Micros   int64   `json:"p99_us"`
			CacheHits   int64   `json:"cache_hits"`
			CacheMisses int64   `json:"cache_misses"`
			Compiles    int64   `json:"compiles"`
			HighWater   int64   `json:"high_water"`
		} `json:"points"`
	}
	if err := json.Unmarshal(raw, &section); err != nil {
		t.Fatal(err)
	}
	if section.S != 120 || section.QueriesPerClient != 4 ||
		section.MemKB == 0 || section.GrantKB == 0 || section.GOMAXPROCS == 0 {
		t.Errorf("section header: %+v", section)
	}
	if len(section.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(section.Points))
	}
	for _, p := range section.Points {
		if p.Queries != p.Clients*4 {
			t.Errorf("point %+v: queries != clients*4", p)
		}
		if p.QPS == 0 || p.P50Micros == 0 || p.P95Micros == 0 || p.P99Micros == 0 {
			t.Errorf("unpopulated latencies in point %+v", p)
		}
		// Every point runs one query shape against a fresh server: the first
		// query compiles, every repeat must hit the plan cache.
		if p.Compiles != 1 || p.CacheMisses != 1 {
			t.Errorf("point %+v: want exactly 1 compile and 1 miss", p)
		}
		if want := int64(p.Queries - 1); p.CacheHits != want {
			t.Errorf("point %+v: want %d cache hits", p, want)
		}
		if p.HighWater == 0 || p.HighWater > int64(section.MemKB)<<10 {
			t.Errorf("point %+v: high water outside (0, budget]", p)
		}
	}
}

func TestPercentileMicros(t *testing.T) {
	if got := percentileMicros(nil, 95); got != 0 {
		t.Errorf("empty samples gave %d", got)
	}
	// 1..100 µs: nearest-rank percentiles land on the obvious values, and the
	// input order must not matter.
	samples := make([]time.Duration, 100)
	for i := range samples {
		samples[i] = time.Duration(100-i) * time.Microsecond
	}
	if got := percentileMicros(samples, 50); got != 50 {
		t.Errorf("p50 = %d, want 50", got)
	}
	if got := percentileMicros(samples, 99); got != 99 {
		t.Errorf("p99 = %d, want 99", got)
	}
	if got := percentileMicros(samples, 100); got != 100 {
		t.Errorf("p100 = %d, want 100", got)
	}
}
