package main

// divbench serve: the concurrent query server, in two modes.
//
// Listen mode (-addr) runs the long-lived service on a TCP address until the
// process is killed; divql's "connect" command is the matching client.
//
// Load-generator mode (the default) starts an in-process server, populates a
// transcript/courses workload, and sweeps closed-loop client counts: each
// client issues -queries back-to-back division queries on its own connection,
// and the sweep reports throughput (qps), latency percentiles, admission
// queueing, and plan-cache hit rates per client count. -json merges a
// server_throughput section into BENCH_divbench.json; -check gates CI on the
// 8-client run (exact quotients, one compile for the whole run, governor
// high water within budget).

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sort"
	"sync"
	"time"

	reldiv "repro"
	"repro/internal/obs"
	"repro/server"
)

// serveThroughputPoint is one client-count measurement in the JSON dump.
type serveThroughputPoint struct {
	Clients         int     `json:"clients"`
	Queries         int     `json:"queries"` // total completed queries
	QPS             float64 `json:"qps"`
	P50Micros       int64   `json:"p50_us"`
	P95Micros       int64   `json:"p95_us"`
	P99Micros       int64   `json:"p99_us"`
	QueuedP95Micros int64   `json:"queued_p95_us"` // admission wait, p95
	CacheHits       int64   `json:"cache_hits"`
	CacheMisses     int64   `json:"cache_misses"`
	Compiles        int64   `json:"compiles"`   // rewrite.Compile calls during the point
	HighWater       int64   `json:"high_water"` // governor peak grant bytes
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "", "listen address; when set, serve forever instead of benchmarking")
	clientsFlag := fs.String("clients", "1,2,4,8", "comma-separated concurrent client counts to sweep")
	queries := fs.Int("queries", 16, "queries per client per point")
	students := fs.Int("s", 1500, "students in the transcript workload")
	courses := fs.Int("q", 8, "courses in the divisor")
	memKB := fs.Int("mem", 1024, "global memory budget in KB (split across in-flight queries)")
	grantKB := fs.Int("grant", 256, "per-query admission grant in KB")
	jsonOut := fs.Bool("json", false, "merge a server_throughput section into "+benchJSONFile)
	check := fs.Bool("check", false, "exit nonzero unless the 8-client point returns exact quotients with one compile and the governor within budget (skipped when GOMAXPROCS < 2)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *addr != "" {
		return serveForever(*addr, *memKB)
	}

	clientCounts, err := parseSizes(*clientsFlag)
	if err != nil {
		return err
	}
	if *check {
		if runtime.GOMAXPROCS(0) < 2 {
			fmt.Println("(-check skipped: GOMAXPROCS < 2, no concurrency available)")
			return nil
		}
		has8 := false
		for _, n := range clientCounts {
			has8 = has8 || n == 8
		}
		if !has8 {
			return fmt.Errorf("serve -check: the gate runs at 8 clients (add 8 to -clients)")
		}
	}

	grantBytes := *grantKB << 10
	memBytes := int64(*memKB) << 10
	if int64(grantBytes) > memBytes {
		return fmt.Errorf("per-query grant %d KB exceeds the %d KB budget: every query would be rejected", *grantKB, *memKB)
	}

	fmt.Printf("Server throughput: %d students x %d courses, budget %d KB, grant %d KB, GOMAXPROCS=%d\n",
		*students, *courses, *memKB, *grantKB, runtime.GOMAXPROCS(0))
	fmt.Printf("%8s %10s %10s %10s %10s %12s %8s %9s\n",
		"clients", "qps", "p50", "p95", "p99", "queued p95", "hits", "compiles")

	var points []serveThroughputPoint
	for _, n := range clientCounts {
		p, err := serveLoadPoint(n, *queries, *students, *courses, memBytes, grantBytes, *check)
		if err != nil {
			return err
		}
		points = append(points, p)
		fmt.Printf("%8d %10.0f %10s %10s %10s %12s %8d %9d\n",
			n, p.QPS,
			time.Duration(p.P50Micros)*time.Microsecond,
			time.Duration(p.P95Micros)*time.Microsecond,
			time.Duration(p.P99Micros)*time.Microsecond,
			time.Duration(p.QueuedP95Micros)*time.Microsecond,
			p.CacheHits, p.Compiles)
	}

	if *jsonOut {
		section := map[string]any{
			"s":                  *students,
			"q":                  *courses,
			"queries_per_client": *queries,
			"mem_kb":             *memKB,
			"grant_kb":           *grantKB,
			"gomaxprocs":         runtime.GOMAXPROCS(0),
			"points":             points,
		}
		if err := writeJSONSection(benchJSONFile, "server_throughput", section); err != nil {
			return err
		}
		fmt.Printf("(wrote server_throughput section to %s)\n", benchJSONFile)
	}

	if *check {
		for _, p := range points {
			if p.Clients != 8 {
				continue
			}
			// One query shape for the whole point: the first query compiles,
			// every repeat must hit the prepared-plan cache and skip
			// rewrite.Compile — the "rewrite.compiles" counter is the witness.
			if p.Compiles != 1 {
				return fmt.Errorf("serve -check: %d compiles across %d queries, want exactly 1 (plan-cache hits must skip rewrite.Compile)", p.Compiles, p.Queries)
			}
			if want := int64(p.Queries - 1); p.CacheHits != want {
				return fmt.Errorf("serve -check: %d cache hits across %d queries, want %d", p.CacheHits, p.Queries, want)
			}
			if p.HighWater > memBytes {
				return fmt.Errorf("serve -check: governor high water %d exceeds the %d-byte budget", p.HighWater, memBytes)
			}
			fmt.Printf("(-check passed: 8 clients, exact quotients, 1 compile / %d hits, high water %d <= budget %d)\n",
				p.CacheHits, p.HighWater, memBytes)
		}
	}
	return nil
}

// serveLoadPoint runs one client-count point against a fresh server so the
// cache, governor high water, and obs deltas belong to this point alone.
// verify additionally checks every quotient against the library answer.
func serveLoadPoint(clients, queries, students, courses int, memBytes int64, grantBytes int, verify bool) (serveThroughputPoint, error) {
	var p serveThroughputPoint
	s := server.NewServer(server.Options{MemoryBytes: memBytes})
	defer s.Close()

	dial := func() (*server.Client, error) {
		cc, sc := net.Pipe()
		go s.ServeConn(sc)
		return server.NewClient(cc), nil
	}

	setup, err := dial()
	if err != nil {
		return p, err
	}
	wantRows, err := loadServeWorkload(setup, students, courses)
	setup.Close()
	if err != nil {
		return p, err
	}

	compiles := obs.Default.Counter("rewrite.compiles")
	compilesBefore := compiles.Load()

	type result struct {
		latencies []time.Duration
		queued    []time.Duration
		err       error
	}
	results := make([]result, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := &results[i]
			c, err := dial()
			if err != nil {
				r.err = err
				return
			}
			defer c.Close()
			for q := 0; q < queries; q++ {
				t0 := time.Now()
				resp, err := c.Do(server.Request{Op: "divide", Dividend: "transcript",
					Divisor: "courses", MemoryBudget: grantBytes})
				if err != nil {
					r.err = err
					return
				}
				if err := resp.Err(); err != nil {
					r.err = err
					return
				}
				if verify && len(resp.Rows) != wantRows {
					r.err = fmt.Errorf("quotient has %d rows, library says %d", len(resp.Rows), wantRows)
					return
				}
				r.latencies = append(r.latencies, time.Since(t0))
				r.queued = append(r.queued, time.Duration(resp.QueuedMicros)*time.Microsecond)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var latencies, queued []time.Duration
	for i := range results {
		if results[i].err != nil {
			return p, fmt.Errorf("client %d: %w", i, results[i].err)
		}
		latencies = append(latencies, results[i].latencies...)
		queued = append(queued, results[i].queued...)
	}

	hits, misses := s.CacheStats()
	p = serveThroughputPoint{
		Clients:         clients,
		Queries:         len(latencies),
		QPS:             float64(len(latencies)) / elapsed.Seconds(),
		P50Micros:       percentileMicros(latencies, 50),
		P95Micros:       percentileMicros(latencies, 95),
		P99Micros:       percentileMicros(latencies, 99),
		QueuedP95Micros: percentileMicros(queued, 95),
		CacheHits:       hits,
		CacheMisses:     misses,
		Compiles:        int64(compiles.Load() - compilesBefore),
		HighWater:       s.Governor().HighWater(),
	}
	return p, nil
}

// loadServeWorkload populates the server's transcript/courses tables and
// returns the library-computed quotient size as the correctness reference.
func loadServeWorkload(c *server.Client, students, courses int) (int, error) {
	rng := rand.New(rand.NewSource(7))
	transcript := reldiv.NewRelation("transcript",
		reldiv.Int64Col("student"), reldiv.Int64Col("course"))
	courseRel := reldiv.NewRelation("courses", reldiv.Int64Col("course"))

	if err := c.CreateTable("transcript", "student", "course"); err != nil {
		return 0, err
	}
	if err := c.CreateTable("courses", "course"); err != nil {
		return 0, err
	}
	var divisorRows, dividendRows [][]int64
	for cs := 0; cs < courses; cs++ {
		divisorRows = append(divisorRows, []int64{int64(cs)})
		courseRel.MustInsert(int64(cs))
	}
	for s := 0; s < students; s++ {
		full := s%4 == 0
		for cs := 0; cs < courses; cs++ {
			if full || rng.Intn(2) == 0 {
				dividendRows = append(dividendRows, []int64{int64(s), int64(cs)})
				transcript.MustInsert(int64(s), int64(cs))
			}
		}
	}
	if err := c.Insert("courses", divisorRows); err != nil {
		return 0, err
	}
	if err := c.Insert("transcript", dividendRows); err != nil {
		return 0, err
	}
	want, err := reldiv.Divide(transcript, courseRel, nil, nil)
	if err != nil {
		return 0, err
	}
	return want.NumRows(), nil
}

// percentileMicros is the nearest-rank percentile of the samples, in
// microseconds; 0 when there are no samples.
func percentileMicros(samples []time.Duration, pct int) int64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := (len(sorted) - 1) * pct / 100
	return sorted[idx].Microseconds()
}

// serveForever runs the query service on a TCP address until killed.
func serveForever(addr string, memKB int) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s := server.NewServer(server.Options{MemoryBytes: int64(memKB) << 10})
	defer s.Close()
	fmt.Printf("serving on %s (budget %d KB); connect with: divql then 'connect %s'\n",
		ln.Addr(), memKB, ln.Addr())
	return s.Serve(ln)
}
