package main

// divbench spill — the memory-pressure sweep behind the out-of-core
// division work. One storage-backed workload is divided repeatedly while
// the per-query memory budget shrinks from 100% of the input's on-device
// footprint down to 1%, measuring what recursive grace partitioning costs
// as the tables stop fitting:
//
//   - at 100% everything fits: one in-memory attempt, zero spill;
//   - as the budget crosses the table footprint, overflowing cells are
//     re-partitioned recursively (fresh hash salt per depth) and child
//     partitions stage through buffer-pool-backed spill files;
//   - at 1% the recursion is several levels deep, yet the runtime should
//     grow by a bounded constant factor per budget halving — the smooth
//     degradation the restart-on-overflow loop (also measured, as the
//     baseline) cannot deliver.
//
// Every point verifies the quotient exactly against the generator's ground
// truth, so the sweep is a correctness harness as much as a benchmark.
// Results merge into the memory_pressure section of BENCH_divbench.json,
// preserving sibling sections byte-for-byte. -check gates CI on the sweep:
// exact quotients everywhere, at least one spilled point, zero spill at the
// full budget, and smooth runtime growth.

import (
	"flag"
	"fmt"
	"sort"
	"time"

	"repro/internal/buffer"
	"repro/internal/disk"
	"repro/internal/division"
	"repro/internal/exec"
	"repro/internal/storage"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// spillPoint is one budget level in the memory_pressure section.
type spillPoint struct {
	Pct         int   `json:"pct"`          // budget as % of input bytes
	BudgetBytes int   `json:"budget_bytes"` // the absolute budget
	Ns          int64 `json:"ns"`           // recursive division, min wall clock over reps

	QuotientRows     int   `json:"quotient_rows"`
	Attempts         int   `json:"attempts"`
	Overflowed       int   `json:"overflowed"`
	WastedTuples     int64 `json:"wasted_tuples"`
	Repartitions     int   `json:"repartitions"`
	MaxDepth         int   `json:"max_depth"`
	Cells            int   `json:"cells"`
	MemResidentCells int   `json:"mem_resident_cells"`
	SpilledParts     int   `json:"spilled_partitions"`
	SpillBytes       int64 `json:"spill_bytes"`

	// The restart-on-overflow baseline at the same budget. RestartOK is
	// false when the legacy loop could not meet the budget at all.
	RestartNs int64 `json:"restart_ns"`
	RestartK  int   `json:"restart_k"`
	RestartOK bool  `json:"restart_ok"`
}

// spillCheckMaxStepRatio bounds the runtime growth per sweep step (the
// budgets roughly halve step to step). The loosest legitimate step is the
// first one that spills: it pays the whole in-memory-to-out-of-core
// transition — a write and a read of most of the input — at once, which
// lands around 3.5x on the reference workload. spillCheckMaxTotalRatio
// bounds the tightest budget against the full one; the point of recursive
// partitioning is that five further halvings add no comparable cliff. Both
// compare against a noise floor so microsecond-scale points do not trip
// the gate on scheduler jitter.
const (
	spillCheckMaxStepRatio  = 4.0
	spillCheckMaxTotalRatio = 8.0
	spillCheckNoiseFloor    = 500 * time.Microsecond
)

func runSpill(args []string) error {
	fs := flag.NewFlagSet("spill", flag.ContinueOnError)
	s := fs.Int("s", 16, "|S| divisor tuples")
	q := fs.Int("q", 2000, "quotient candidates")
	noise := fs.Int("noise", 2, "non-matching tuples per candidate")
	dup := fs.Int("dup", 1, "dividend duplicate factor")
	budgetsFlag := fs.String("budgets", "100,50,25,10,5,2,1", "comma-separated budgets as % of input bytes, largest first")
	strategyFlag := fs.String("strategy", "quotient", "partition strategy: quotient or divisor")
	reps := fs.Int("reps", 3, "repetitions per point; minimum wall clock wins")
	jsonOut := fs.Bool("json", false, "merge a memory_pressure section into "+benchJSONFile)
	check := fs.Bool("check", false, "exit nonzero unless quotients are exact at every budget, at least one point spills, the full budget does not, and runtime grows smoothly as the budget shrinks")
	if err := fs.Parse(args); err != nil {
		return err
	}
	budgets, err := parseSizes(*budgetsFlag)
	if err != nil {
		return err
	}
	if len(budgets) == 0 {
		return fmt.Errorf("spill: empty budget list")
	}
	for _, pct := range budgets {
		if pct < 1 || pct > 100 {
			return fmt.Errorf("spill: budget %d%% out of [1,100]", pct)
		}
	}
	var strategy division.PartitionStrategy
	switch *strategyFlag {
	case "quotient":
		strategy = division.QuotientPartitioning
	case "divisor":
		strategy = division.DivisorPartitioning
	default:
		return fmt.Errorf("spill: unknown strategy %q (want quotient or divisor)", *strategyFlag)
	}

	inst, err := workload.Generate(workload.Config{
		DivisorTuples:      *s,
		QuotientCandidates: *q,
		FullFraction:       0.5,
		MatchFraction:      0.8,
		NoisePerCandidate:  *noise,
		DuplicateFactor:    *dup,
		Shuffle:            true,
		Seed:               7,
	})
	if err != nil {
		return err
	}

	// The input lives in heap files, so the sweep exercises the same scan
	// path — table scans through the buffer pool — the spill files use.
	pool := buffer.New(4 << 20)
	rel, err := workload.Load(pool, inst, disk.PaperPageSize)
	if err != nil {
		return err
	}
	inputBytes := int(rel.Dividend.BytesOnDevice() + rel.Divisor.BytesOnDevice())
	tempDev := disk.NewDevice("spilltemp", disk.PaperPageSize)
	env := division.Env{Pool: pool, TempDev: tempDev}
	spec := func() division.Spec {
		return division.Spec{
			Dividend:    exec.NewTableScan(rel.Dividend, false),
			Divisor:     exec.NewTableScan(rel.Divisor, false),
			DivisorCols: []int{1},
		}
	}

	fmt.Printf("Memory-pressure sweep (%s partitioning): |S|=%d, candidates=%d, |R|=%d, input=%d bytes\n",
		*strategyFlag, *s, *q, len(inst.Dividend), inputBytes)
	fmt.Printf("%5s %10s %10s %6s %5s %6s %6s %10s %10s %10s\n",
		"pct", "budget", "elapsed", "depth", "cells", "spill", "resid", "spill B", "restart", "k")

	spillBase := storage.LiveSpillFiles()
	var points []spillPoint
	for _, pct := range budgets {
		budget := inputBytes * pct / 100
		if budget < 1 {
			budget = 1
		}
		p := spillPoint{Pct: pct, BudgetBytes: budget}
		for r := 0; r < *reps; r++ {
			start := time.Now()
			qts, st, err := division.DivideRecursive(spec(), env, strategy,
				division.HashDivisionOptions{MemoryBudget: budget}, division.RecursiveOptions{})
			ns := time.Since(start).Nanoseconds()
			if err != nil {
				return fmt.Errorf("spill: budget %d%% (%d bytes): %w", pct, budget, err)
			}
			if err := verifyQuotient(spec().QuotientSchema(), qts, inst.QuotientIDs); err != nil {
				return fmt.Errorf("spill: budget %d%% (%d bytes): %w", pct, budget, err)
			}
			if r == 0 || ns < p.Ns {
				p.Ns = ns
				p.QuotientRows = len(qts)
				p.Attempts = st.Attempts
				p.Overflowed = st.Overflowed
				p.WastedTuples = st.WastedTuples
				p.Repartitions = st.Repartitions
				p.MaxDepth = st.MaxDepth
				p.Cells = st.Cells
				p.MemResidentCells = st.MemResidentCells
				p.SpilledParts = st.SpilledPartitions
				p.SpillBytes = st.SpillBytes
			}
		}
		if live := storage.LiveSpillFiles(); live != spillBase {
			return fmt.Errorf("spill: budget %d%%: %d spill files leaked", pct, live-spillBase)
		}

		// The restart-on-overflow baseline: rerun the whole division with
		// k = 1, 2, 4, … quotient partitions until the tables fit. At tight
		// budgets it may fail outright — that is part of the result.
		for r := 0; r < *reps; r++ {
			start := time.Now()
			qts, k, err := division.DivideWithBudget(spec(), env,
				budget, 0)
			ns := time.Since(start).Nanoseconds()
			if err != nil {
				p.RestartOK = false
				p.RestartNs = 0
				p.RestartK = k
				break
			}
			if err := verifyQuotient(spec().QuotientSchema(), qts, inst.QuotientIDs); err != nil {
				return fmt.Errorf("spill: restart baseline at %d%%: %w", pct, err)
			}
			p.RestartOK = true
			p.RestartK = k
			if r == 0 || ns < p.RestartNs {
				p.RestartNs = ns
			}
		}

		restart := "failed"
		if p.RestartOK {
			restart = time.Duration(p.RestartNs).Round(time.Microsecond).String()
		}
		fmt.Printf("%4d%% %10d %10s %6d %5d %6d %6d %10d %10s %10d\n",
			pct, budget, time.Duration(p.Ns).Round(time.Microsecond),
			p.MaxDepth, p.Cells, p.SpilledParts, p.MemResidentCells, p.SpillBytes,
			restart, p.RestartK)
		points = append(points, p)
	}

	if *jsonOut {
		section := map[string]any{
			"s":           *s,
			"q":           *q,
			"r":           len(inst.Dividend),
			"noise":       *noise,
			"dup":         *dup,
			"strategy":    *strategyFlag,
			"input_bytes": inputBytes,
			"reps":        *reps,
			"points":      points,
		}
		if err := writeJSONSection(benchJSONFile, "memory_pressure", section); err != nil {
			return err
		}
		fmt.Printf("(wrote memory_pressure section to %s)\n", benchJSONFile)
	}

	if *check {
		if err := checkSpillSweep(points); err != nil {
			return fmt.Errorf("spill -check: %w", err)
		}
		fmt.Println("(-check passed: exact quotients, spill engaged, smooth degradation)")
	}
	return nil
}

// verifyQuotient compares the division result against the generator's
// ground-truth student ids, exactly.
func verifyQuotient(qs *tuple.Schema, qts []tuple.Tuple, want []int64) error {
	if len(qts) != len(want) {
		return fmt.Errorf("quotient has %d rows, want %d", len(qts), len(want))
	}
	got := make([]int64, len(qts))
	for i, t := range qts {
		got[i] = qs.Int64(t, 0)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("quotient id %d at rank %d, want %d", got[i], i, want[i])
		}
	}
	return nil
}

// checkSpillSweep is the CI gate over a completed sweep. Quotient
// exactness is enforced point by point during the run; here the gate is
// about the shape of the curve: the full budget must not spill, some
// tighter budget must, and the runtime must degrade smoothly — each step
// (roughly a budget halving) bounded by a constant factor, and the
// tightest point bounded against the full-budget baseline.
func checkSpillSweep(points []spillPoint) error {
	if len(points) < 2 {
		return fmt.Errorf("need at least 2 budget points, got %d", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].Pct >= points[i-1].Pct {
			return fmt.Errorf("budgets must be strictly decreasing (%d%% after %d%%)", points[i].Pct, points[i-1].Pct)
		}
	}
	full := points[0]
	if full.Pct == 100 && full.SpillBytes != 0 {
		return fmt.Errorf("full budget spilled %d bytes; the sweep should start in memory", full.SpillBytes)
	}
	spilled := false
	for _, p := range points {
		if p.SpillBytes > 0 && p.SpilledParts > 0 {
			spilled = true
		}
	}
	if !spilled {
		return fmt.Errorf("no budget point spilled; tighten the budget list or grow the workload")
	}
	floor := spillCheckNoiseFloor.Nanoseconds()
	for i := 1; i < len(points); i++ {
		prev, cur := points[i-1], points[i]
		if prev.Ns < floor && cur.Ns < floor {
			continue // both under the noise floor: ratios are meaningless
		}
		base := prev.Ns
		if base < floor {
			base = floor
		}
		if ratio := float64(cur.Ns) / float64(base); ratio > spillCheckMaxStepRatio {
			return fmt.Errorf("runtime jumped %.2fx from %d%% to %d%% budget (limit %.1fx): not smooth",
				ratio, prev.Pct, cur.Pct, spillCheckMaxStepRatio)
		}
	}
	base := full.Ns
	if base < floor {
		base = floor
	}
	last := points[len(points)-1]
	if ratio := float64(last.Ns) / float64(base); ratio > spillCheckMaxTotalRatio {
		return fmt.Errorf("tightest budget (%d%%) is %.2fx the full budget (limit %.1fx)",
			last.Pct, ratio, spillCheckMaxTotalRatio)
	}
	return nil
}
