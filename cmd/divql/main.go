// Command divql is a tiny interactive shell around the reldiv library: load
// CSV relations, inspect them, and divide with any of the paper's
// algorithms.
//
//	$ divql
//	> load transcript transcript.csv student:int,course:int
//	> load courses courses.csv course:int
//	> divide transcript by courses using hash-division
//	> show result
//	> explain transcript by courses
//	> quit
//
// With a query server running (divbench serve -addr :7171), divql is also its
// client: "connect" dials the server, "push" uploads a loaded relation, and
// "rdivide" runs the division remotely under the server's admission control
// and plan cache.
//
//	> connect localhost:7171
//	> push transcript
//	> push courses
//	> rdivide transcript by courses
//	> show result
package main

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	reldiv "repro"
	"repro/server"
)

type shell struct {
	relations map[string]*reldiv.Relation
	out       *bufio.Writer

	// client is the remote query-server connection when "connect" has been
	// issued; push/rdivide/tables operate against it.
	client     *server.Client
	remoteAddr string
}

func main() {
	sh := &shell{
		relations: make(map[string]*reldiv.Relation),
		out:       bufio.NewWriter(os.Stdout),
	}
	in := bufio.NewScanner(os.Stdin)
	interactive := isTerminalHint()
	if interactive {
		fmt.Fprintln(sh.out, "divql — relational division shell (help for commands)")
	}
	for {
		if interactive {
			fmt.Fprint(sh.out, "> ")
		}
		sh.out.Flush()
		if !in.Scan() {
			break
		}
		line := strings.TrimSpace(in.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "quit" || line == "exit" {
			break
		}
		if err := sh.execute(line); err != nil {
			fmt.Fprintf(sh.out, "error: %v\n", err)
		}
	}
	if sh.client != nil {
		sh.client.Close()
	}
	sh.out.Flush()
}

// isTerminalHint avoids prompting when input is piped.
func isTerminalHint() bool {
	fi, err := os.Stdin.Stat()
	if err != nil {
		return true
	}
	return fi.Mode()&os.ModeCharDevice != 0
}

func (sh *shell) execute(line string) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case "help":
		fmt.Fprintln(sh.out, `commands:
  load <name> <file.csv> <col:type,...>    types: int, str:<width>
  list                                     list loaded relations
  show <name> [limit]                      print rows
  divide <dividend> by <divisor> [on c1,c2] [using <algorithm>]
         [workers <n>] [budget <kb>] [as <name>]
  explain <dividend> by <divisor>          show the cost-based plan
  explain plan <dividend> by <divisor>     show the logical plan before/after the for-all rewrite
  explain analyze <dividend> by <divisor> [using <algorithm>] [workers <n>] [budget <kb>]
         run the division and print the per-operator profile (rows, time, counters)
  stats <dividend> by <divisor>            run hash-division, show its run statistics
  select <name> where <col>=<val>|<col>~<substr> [as <name>]
  project <name> <col1,col2> [as <name>]
  algorithms                               list algorithm names
  connect <host:port>                      dial a query server (divbench serve -addr)
  disconnect                               drop the server connection
  tables                                   list the server's tables
  push <name> [as <table>]                 upload a loaded int relation to the server
  rdivide <dividend> by <divisor> [on c1,c2] [budget <kb>] [as <name>]
          divide remotely under the server's admission control and plan cache
  quit`)
		return nil
	case "list":
		names := make([]string, 0, len(sh.relations))
		for n := range sh.relations {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			r := sh.relations[n]
			fmt.Fprintf(sh.out, "%-12s %6d rows  columns: %s\n", n, r.NumRows(), strings.Join(r.Columns(), ", "))
		}
		return nil
	case "algorithms":
		fmt.Fprintln(sh.out, "auto naive sort-agg sort-agg+join hash-agg hash-agg+join hash-division")
		return nil
	case "load":
		return sh.load(fields[1:])
	case "show":
		return sh.show(fields[1:])
	case "divide":
		return sh.divide(fields[1:])
	case "explain":
		return sh.explain(fields[1:])
	case "stats":
		return sh.stats(fields[1:])
	case "select":
		return sh.selectRows(fields[1:])
	case "project":
		return sh.project(fields[1:])
	case "connect":
		return sh.connect(fields[1:])
	case "disconnect":
		return sh.disconnect()
	case "tables":
		return sh.remoteTables()
	case "push":
		return sh.push(fields[1:])
	case "rdivide":
		return sh.remoteDivide(fields[1:])
	default:
		return fmt.Errorf("unknown command %q (try help)", fields[0])
	}
}

func parseColumns(spec string) ([]reldiv.Column, error) {
	var cols []reldiv.Column
	for _, part := range strings.Split(spec, ",") {
		nt := strings.SplitN(part, ":", 3)
		if len(nt) < 2 {
			return nil, fmt.Errorf("column %q must be name:type", part)
		}
		switch nt[1] {
		case "int":
			cols = append(cols, reldiv.Int64Col(nt[0]))
		case "str":
			width := 16
			if len(nt) == 3 {
				if _, err := fmt.Sscanf(nt[2], "%d", &width); err != nil {
					return nil, fmt.Errorf("bad width in %q", part)
				}
			}
			cols = append(cols, reldiv.StringCol(nt[0], width))
		default:
			return nil, fmt.Errorf("unknown type %q (want int or str[:width])", nt[1])
		}
	}
	return cols, nil
}

func (sh *shell) load(args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("usage: load <name> <file.csv> <col:type,...>")
	}
	name, path, colSpec := args[0], args[1], args[2]
	cols, err := parseColumns(colSpec)
	if err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rel, err := reldiv.FromCSV(f, name, cols...)
	if err != nil {
		return err
	}
	sh.relations[name] = rel
	fmt.Fprintf(sh.out, "loaded %s: %d rows\n", name, rel.NumRows())
	return nil
}

func (sh *shell) rel(name string) (*reldiv.Relation, error) {
	r, ok := sh.relations[name]
	if !ok {
		return nil, fmt.Errorf("no relation %q (try list)", name)
	}
	return r, nil
}

func (sh *shell) show(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: show <name> [limit]")
	}
	r, err := sh.rel(args[0])
	if err != nil {
		return err
	}
	limit := 20
	if len(args) > 1 {
		if _, err := fmt.Sscanf(args[1], "%d", &limit); err != nil {
			return fmt.Errorf("bad limit %q", args[1])
		}
	}
	fmt.Fprintf(sh.out, "%s\n", strings.Join(r.Columns(), "\t"))
	for i, row := range r.Rows() {
		if i >= limit {
			fmt.Fprintf(sh.out, "... (%d more rows)\n", r.NumRows()-limit)
			break
		}
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = fmt.Sprint(v)
		}
		fmt.Fprintln(sh.out, strings.Join(parts, "\t"))
	}
	return nil
}

// divideArgs is the parsed form of a divide command.
type divideArgs struct {
	dividend, divisor string
	on                []string
	alg               string
	as                string
	workers           int
	budgetKB          int
}

// parseDivide handles: <dividend> by <divisor> [on c1,c2] [using alg]
// [workers n] [budget kb] [as name]
func parseDivide(args []string) (divideArgs, error) {
	var d divideArgs
	if len(args) < 3 || args[1] != "by" {
		return d, fmt.Errorf("usage: divide <dividend> by <divisor> [on cols] [using alg] [workers n] [budget kb] [as name]")
	}
	d.dividend, d.divisor = args[0], args[2]
	rest := args[3:]
	takeValue := func(what string) (string, error) {
		if len(rest) < 2 {
			return "", fmt.Errorf("%s needs a value", what)
		}
		v := rest[1]
		rest = rest[2:]
		return v, nil
	}
	for len(rest) > 0 {
		switch rest[0] {
		case "on":
			v, err := takeValue("on")
			if err != nil {
				return d, err
			}
			d.on = strings.Split(v, ",")
		case "using":
			v, err := takeValue("using")
			if err != nil {
				return d, err
			}
			d.alg = v
		case "as":
			v, err := takeValue("as")
			if err != nil {
				return d, err
			}
			d.as = v
		case "workers":
			v, err := takeValue("workers")
			if err != nil {
				return d, err
			}
			if _, err := fmt.Sscanf(v, "%d", &d.workers); err != nil {
				return d, fmt.Errorf("bad workers %q", v)
			}
		case "budget":
			v, err := takeValue("budget")
			if err != nil {
				return d, err
			}
			if _, err := fmt.Sscanf(v, "%d", &d.budgetKB); err != nil {
				return d, fmt.Errorf("bad budget %q", v)
			}
		default:
			return d, fmt.Errorf("unexpected token %q", rest[0])
		}
	}
	return d, nil
}

func (sh *shell) divide(args []string) error {
	d, err := parseDivide(args)
	if err != nil {
		return err
	}
	dividend, err := sh.rel(d.dividend)
	if err != nil {
		return err
	}
	divisor, err := sh.rel(d.divisor)
	if err != nil {
		return err
	}
	opts := &reldiv.Options{
		Workers:      d.workers,
		MemoryBudget: d.budgetKB * 1024,
	}
	if d.alg != "" {
		alg, err := reldiv.ParseAlgorithm(d.alg)
		if err != nil {
			return err
		}
		opts.Algorithm = alg
	}
	q, err := reldiv.Divide(dividend, divisor, d.on, opts)
	if err != nil {
		return err
	}
	as := d.as
	if as == "" {
		as = "result"
	}
	sh.relations[as] = q
	fmt.Fprintf(sh.out, "%s: %d rows (stored as %q)\n", q.Name(), q.NumRows(), as)
	return nil
}

func (sh *shell) stats(args []string) error {
	if len(args) < 3 || args[1] != "by" {
		return fmt.Errorf("usage: stats <dividend> by <divisor>")
	}
	dividend, err := sh.rel(args[0])
	if err != nil {
		return err
	}
	divisor, err := sh.rel(args[2])
	if err != nil {
		return err
	}
	q, st, err := reldiv.DivideWithStats(dividend, divisor, nil, nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(sh.out, "hash-division of %s by %s: %d quotient rows\n",
		args[0], args[2], q.NumRows())
	fmt.Fprintf(sh.out, "  divisor rows read       %8d (distinct %d)\n", st.DivisorTuples, st.DivisorDistinct)
	fmt.Fprintf(sh.out, "  dividend rows read      %8d\n", st.DividendTuples)
	fmt.Fprintf(sh.out, "  discarded (no match)    %8d\n", st.DiscardedNoMatch)
	fmt.Fprintf(sh.out, "  quotient candidates     %8d\n", st.Candidates)
	fmt.Fprintf(sh.out, "  peak hash table memory  %8d bytes\n", st.PeakTableBytes)
	return nil
}

func (sh *shell) explain(args []string) error {
	if len(args) > 0 {
		switch args[0] {
		case "plan":
			return sh.explainPlan(args[1:])
		case "analyze":
			return sh.explainAnalyze(args[1:])
		}
	}
	if len(args) < 3 || args[1] != "by" {
		return fmt.Errorf("usage: explain [plan|analyze] <dividend> by <divisor>")
	}
	dividend, err := sh.rel(args[0])
	if err != nil {
		return err
	}
	divisor, err := sh.rel(args[2])
	if err != nil {
		return err
	}
	plan, err := reldiv.Explain(dividend, divisor, nil)
	if err != nil {
		// Column-name matching may fail; Explain only needs cardinalities.
		plan, err = reldiv.Explain(dividend, divisor, dividend.Columns()[len(dividend.Columns())-divisorCols(divisor):])
		if err != nil {
			return err
		}
	}
	fmt.Fprintf(sh.out, "chosen: %v\n", plan.Chosen)
	type kv struct {
		alg reldiv.Algorithm
		ms  float64
	}
	var kvs []kv
	for a, ms := range plan.EstimatedMS {
		kvs = append(kvs, kv{a, ms})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].ms < kvs[j].ms })
	for _, e := range kvs {
		fmt.Fprintf(sh.out, "  %-16s %12.0f ms (analytical)\n", e.alg, e.ms)
	}
	return nil
}

func divisorCols(divisor *reldiv.Relation) int { return len(divisor.Columns()) }

// explainPlan handles: explain plan <dividend> by <divisor> [on c1,c2]
func (sh *shell) explainPlan(args []string) error {
	if len(args) < 3 || args[1] != "by" {
		return fmt.Errorf("usage: explain plan <dividend> by <divisor> [on cols]")
	}
	dividend, err := sh.rel(args[0])
	if err != nil {
		return err
	}
	divisor, err := sh.rel(args[2])
	if err != nil {
		return err
	}
	var on []string
	if len(args) >= 5 && args[3] == "on" {
		on = strings.Split(args[4], ",")
	}
	original, rewritten, err := reldiv.ExplainPlan(dividend, divisor, on)
	if err != nil {
		return err
	}
	fmt.Fprintln(sh.out, "aggregation encoding (without a division operator):")
	fmt.Fprint(sh.out, indent(original, "  "))
	fmt.Fprintln(sh.out, "after the for-all rewrite:")
	fmt.Fprint(sh.out, indent(rewritten, "  "))
	return nil
}

// explainAnalyze handles: explain analyze <dividend> by <divisor>
// [on c1,c2] [using alg] [workers n] [budget kb] [as name]
func (sh *shell) explainAnalyze(args []string) error {
	d, err := parseDivide(args)
	if err != nil {
		return fmt.Errorf("usage: explain analyze <dividend> by <divisor> [on cols] [using alg] [workers n] [budget kb] [as name]")
	}
	dividend, err := sh.rel(d.dividend)
	if err != nil {
		return err
	}
	divisor, err := sh.rel(d.divisor)
	if err != nil {
		return err
	}
	opts := &reldiv.Options{
		Workers:      d.workers,
		MemoryBudget: d.budgetKB * 1024,
	}
	if d.alg != "" {
		alg, err := reldiv.ParseAlgorithm(d.alg)
		if err != nil {
			return err
		}
		opts.Algorithm = alg
	}
	q, prof, err := reldiv.ExplainAnalyze(dividend, divisor, d.on, opts)
	if err != nil {
		return err
	}
	as := d.as
	if as == "" {
		as = "result"
	}
	sh.relations[as] = q
	fmt.Fprintf(sh.out, "%s: %d rows (stored as %q)\n", q.Name(), q.NumRows(), as)
	fmt.Fprint(sh.out, prof.Format())
	return nil
}

// connect dials a query server; later push/rdivide/tables run against it.
func (sh *shell) connect(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: connect <host:port>")
	}
	if sh.client != nil {
		return fmt.Errorf("already connected to %s (disconnect first)", sh.remoteAddr)
	}
	c, err := server.Dial(args[0])
	if err != nil {
		return err
	}
	tables, err := c.Tables()
	if err != nil {
		c.Close()
		return err
	}
	sh.client = c
	sh.remoteAddr = args[0]
	fmt.Fprintf(sh.out, "connected to %s (%d tables)\n", args[0], len(tables))
	return nil
}

func (sh *shell) disconnect() error {
	if sh.client == nil {
		return fmt.Errorf("not connected")
	}
	sh.client.Close()
	sh.client = nil
	fmt.Fprintf(sh.out, "disconnected from %s\n", sh.remoteAddr)
	sh.remoteAddr = ""
	return nil
}

func (sh *shell) remote() (*server.Client, error) {
	if sh.client == nil {
		return nil, fmt.Errorf("not connected (connect <host:port> first)")
	}
	return sh.client, nil
}

func (sh *shell) remoteTables() error {
	c, err := sh.remote()
	if err != nil {
		return err
	}
	tables, err := c.Tables()
	if err != nil {
		return err
	}
	for _, t := range tables {
		fmt.Fprintln(sh.out, t)
	}
	return nil
}

// push uploads a loaded relation to the server. The wire protocol carries
// int64 columns only; string relations stay local.
func (sh *shell) push(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: push <name> [as <table>]")
	}
	c, err := sh.remote()
	if err != nil {
		return err
	}
	rel, err := sh.rel(args[0])
	if err != nil {
		return err
	}
	table := args[0]
	if len(args) >= 3 && args[1] == "as" {
		table = args[2]
	}
	rows := make([][]int64, rel.NumRows())
	for i, row := range rel.Rows() {
		out := make([]int64, len(row))
		for j, v := range row {
			n, ok := v.(int64)
			if !ok {
				return fmt.Errorf("%s.%s is not an int column; the server stores int tables only",
					args[0], rel.Columns()[j])
			}
			out[j] = n
		}
		rows[i] = out
	}
	if err := c.CreateTable(table, rel.Columns()...); err != nil {
		return err
	}
	if err := c.Insert(table, rows); err != nil {
		return err
	}
	fmt.Fprintf(sh.out, "pushed %s: %d rows as %q\n", args[0], len(rows), table)
	return nil
}

// remoteDivide handles: rdivide <dividend> by <divisor> [on c1,c2]
// [budget kb] [as name] — the tables are server-side names, the quotient
// comes back as a local relation.
func (sh *shell) remoteDivide(args []string) error {
	d, err := parseDivide(args)
	if err != nil {
		return fmt.Errorf("usage: rdivide <dividend> by <divisor> [on cols] [budget kb] [as name]")
	}
	if d.alg != "" || d.workers != 0 {
		return fmt.Errorf("rdivide: the server picks the algorithm; using/workers are local-only")
	}
	c, err := sh.remote()
	if err != nil {
		return err
	}
	resp, err := c.Do(server.Request{Op: "divide", Dividend: d.dividend, Divisor: d.divisor,
		On: d.on, MemoryBudget: d.budgetKB * 1024})
	if err != nil {
		return err
	}
	if err := resp.Err(); err != nil {
		return err
	}
	cols := make([]reldiv.Column, len(resp.Columns))
	for i, name := range resp.Columns {
		cols[i] = reldiv.Int64Col(name)
	}
	q := reldiv.NewRelation("quotient", cols...)
	for _, row := range resp.Rows {
		vals := make([]any, len(row))
		for j, v := range row {
			vals[j] = v
		}
		q.MustInsert(vals...)
	}
	as := d.as
	if as == "" {
		as = "result"
	}
	sh.relations[as] = q
	cache := "miss"
	if resp.CacheHit {
		cache = "hit"
	}
	fmt.Fprintf(sh.out, "quotient: %d rows (stored as %q; plan cache %s, queued %dµs)\n",
		q.NumRows(), as, cache, resp.QueuedMicros)
	return nil
}

// indent prefixes every non-empty line.
func indent(s, prefix string) string {
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		if l != "" {
			lines[i] = prefix + l
		}
	}
	return strings.Join(lines, "\n")
}

// selectRows handles: select <name> where col=val | col~substr [as name]
func (sh *shell) selectRows(args []string) error {
	if len(args) < 3 || args[1] != "where" {
		return fmt.Errorf("usage: select <name> where <col>=<val>|<col>~<substr> [as <name>]")
	}
	rel, err := sh.rel(args[0])
	if err != nil {
		return err
	}
	cond := args[2]
	as := "result"
	if len(args) >= 5 && args[3] == "as" {
		as = args[4]
	}

	var colName, value string
	var substring bool
	if i := strings.IndexByte(cond, '='); i > 0 {
		colName, value = cond[:i], cond[i+1:]
	} else if i := strings.IndexByte(cond, '~'); i > 0 {
		colName, value, substring = cond[:i], cond[i+1:], true
	} else {
		return fmt.Errorf("condition %q must be col=val or col~substr", cond)
	}
	colIdx := -1
	for i, c := range rel.Columns() {
		if c == colName {
			colIdx = i
		}
	}
	if colIdx < 0 {
		return fmt.Errorf("no column %q in %s", colName, args[0])
	}

	out := rel.Filter(func(row []any) bool {
		switch v := row[colIdx].(type) {
		case int64:
			want, err := strconv.ParseInt(value, 10, 64)
			return err == nil && !substring && v == want
		case string:
			if substring {
				return strings.Contains(v, value)
			}
			return v == value
		default:
			return false
		}
	})
	sh.relations[as] = out
	fmt.Fprintf(sh.out, "%s: %d rows (stored as %q)\n", args[0], out.NumRows(), as)
	return nil
}

// project handles: project <name> <col1,col2> [as name]
func (sh *shell) project(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: project <name> <col1,col2> [as <name>]")
	}
	rel, err := sh.rel(args[0])
	if err != nil {
		return err
	}
	out, err := rel.Project(strings.Split(args[1], ",")...)
	if err != nil {
		return err
	}
	as := "result"
	if len(args) >= 4 && args[2] == "as" {
		as = args[3]
	}
	sh.relations[as] = out
	fmt.Fprintf(sh.out, "%s: %d rows, columns %v (stored as %q)\n",
		args[0], out.NumRows(), out.Columns(), as)
	return nil
}
