package main

import (
	"bufio"
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	reldiv "repro"
)

func TestParseColumns(t *testing.T) {
	cols, err := parseColumns("student:int,course:int,name:str:12")
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 3 {
		t.Fatalf("got %d columns", len(cols))
	}
	if _, err := parseColumns("x"); err == nil {
		t.Error("missing type accepted")
	}
	if _, err := parseColumns("x:float"); err == nil {
		t.Error("unknown type accepted")
	}
	if _, err := parseColumns("x:str:abc"); err == nil {
		t.Error("bad width accepted")
	}
}

func TestParseDivide(t *testing.T) {
	d, err := parseDivide(
		strings.Fields("transcript by courses on course using hash-division workers 4 budget 64 as q"))
	if err != nil {
		t.Fatal(err)
	}
	if d.dividend != "transcript" || d.divisor != "courses" {
		t.Errorf("operands = %s, %s", d.dividend, d.divisor)
	}
	if len(d.on) != 1 || d.on[0] != "course" {
		t.Errorf("on = %v", d.on)
	}
	if d.alg != "hash-division" || d.as != "q" {
		t.Errorf("alg=%q as=%q", d.alg, d.as)
	}
	if d.workers != 4 || d.budgetKB != 64 {
		t.Errorf("workers=%d budget=%d", d.workers, d.budgetKB)
	}

	for _, bad := range []string{"a b c", "a by b using", "a by b junk", "a by b workers x"} {
		if _, err := parseDivide(strings.Fields(bad)); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestShellEndToEnd(t *testing.T) {
	dir := t.TempDir()
	transcript := filepath.Join(dir, "transcript.csv")
	courses := filepath.Join(dir, "courses.csv")
	if err := os.WriteFile(transcript, []byte("1,101\n1,102\n2,101\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(courses, []byte("101\n102\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	sh := &shell{relations: make(map[string]*reldiv.Relation), out: bufio.NewWriter(&buf)}
	script := []string{
		"load transcript " + transcript + " student:int,course:int",
		"load courses " + courses + " course:int",
		"list",
		"divide transcript by courses using hash-division as q",
		"divide transcript by courses workers 3 as qp",
		"show q",
		"explain transcript by courses",
		"stats transcript by courses",
		"select transcript where student=1 as s1",
		"project transcript course as pc",
		"explain plan transcript by courses",
		"explain analyze transcript by courses using hash-division as qa",
		"explain analyze transcript by courses using sort-agg+join as qs",
		"explain analyze transcript by courses workers 2 as qw",
		"algorithms",
		"help",
	}
	for _, line := range script {
		if err := sh.execute(line); err != nil {
			t.Fatalf("%q: %v", line, err)
		}
	}
	sh.out.Flush()
	out := buf.String()
	for _, want := range []string{
		"loaded transcript: 3 rows",
		"loaded courses: 2 rows",
		"transcript÷courses: 1 rows",
		// At this tiny size the cost model may pick any algorithm; just
		// assert the explain output appeared with estimates.
		"chosen: ",
		"(analytical)",
		"discarded (no match)",
		"quotient candidates",
		"transcript: 2 rows (stored as \"s1\")",
		"columns [course]",
		// explain plan shows both trees around the rewrite.
		"aggregation encoding",
		"SemiJoin",
		"after the for-all rewrite:",
		"Division(on [1])",
		// explain analyze prints the profile tree with counters.
		"transcript÷courses: 1 rows (stored as \"qa\")",
		"total: comp=",
		"hash-division [division]",
		"build-divisor-table [phase]",
		"sort-agg+join [division]",
		"merge-semi-join [MergeSemiJoin]",
		"parallel quotient-partitioning [parallel]",
		"worker 0 [worker]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The quotient holds only student 1.
	if !strings.Contains(out, "\n1\n") {
		t.Errorf("quotient row missing:\n%s", out)
	}
}

func TestShellErrors(t *testing.T) {
	var buf bytes.Buffer
	sh := &shell{relations: make(map[string]*reldiv.Relation), out: bufio.NewWriter(&buf)}
	for _, line := range []string{
		"bogus",
		"show nothing",
		"divide a by b",
		"load x /nonexistent.csv a:int",
	} {
		if err := sh.execute(line); err == nil {
			t.Errorf("%q should error", line)
		}
	}
}
