package reldiv

import (
	"errors"
	"io"
	"testing"
)

func streamInputs() (StreamInput, StreamInput) {
	dividendRows := [][]any{
		{int64(1), int64(101)},
		{int64(1), int64(102)},
		{int64(2), int64(101)},
		{int64(3), int64(101)},
		{int64(3), int64(102)},
		{int64(3), int64(999)},
	}
	divisorRows := [][]any{{int64(101)}, {int64(102)}}
	dividend := StreamInput{
		Columns: []Column{Int64Col("student"), Int64Col("course")},
		Open:    func() (RowReader, error) { return SliceReader(dividendRows), nil },
	}
	divisor := StreamInput{
		Columns: []Column{Int64Col("course")},
		Open:    func() (RowReader, error) { return SliceReader(divisorRows), nil },
	}
	return dividend, divisor
}

func collectStream(t *testing.T, opts *Options) []int64 {
	t.Helper()
	dividend, divisor := streamInputs()
	var got []int64
	err := DivideStream(dividend, divisor, nil, opts, func(row []any) error {
		got = append(got, row[0].(int64))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestDivideStream(t *testing.T) {
	got := collectStream(t, nil)
	if len(got) != 2 {
		t.Fatalf("quotient = %v, want students 1 and 3", got)
	}
	seen := map[int64]bool{got[0]: true, got[1]: true}
	if !seen[1] || !seen[3] {
		t.Errorf("quotient = %v", got)
	}
}

func TestDivideStreamEarlyEmit(t *testing.T) {
	got := collectStream(t, &Options{EarlyEmit: true})
	if len(got) != 2 {
		t.Errorf("early emit quotient = %v", got)
	}
}

func TestDivideStreamOtherAlgorithms(t *testing.T) {
	for _, alg := range []Algorithm{Naive, SortAggregationJoin, HashAggregationJoin} {
		got := collectStream(t, &Options{Algorithm: alg})
		if len(got) != 2 {
			t.Errorf("%v: quotient = %v", alg, got)
		}
	}
}

func TestDivideStreamEmitError(t *testing.T) {
	dividend, divisor := streamInputs()
	sentinel := errors.New("stop")
	err := DivideStream(dividend, divisor, nil, nil, func(row []any) error {
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("emit error not propagated: %v", err)
	}
}

func TestDivideStreamBadInputs(t *testing.T) {
	dividend, divisor := streamInputs()
	if err := DivideStream(StreamInput{}, divisor, nil, nil, nil); err == nil {
		t.Error("missing columns accepted")
	}
	noOpen := dividend
	noOpen.Open = nil
	if err := DivideStream(noOpen, divisor, nil, nil, nil); err == nil {
		t.Error("missing factory accepted")
	}
	if err := DivideStream(dividend, divisor, []string{"nope"}, nil, nil); err == nil {
		t.Error("unknown match column accepted")
	}
	// Row with the wrong type surfaces as an error.
	bad := StreamInput{
		Columns: []Column{Int64Col("student"), Int64Col("course")},
		Open: func() (RowReader, error) {
			return SliceReader([][]any{{"oops", int64(1)}}), nil
		},
	}
	if err := DivideStream(bad, divisor, nil, nil, func([]any) error { return nil }); err == nil {
		t.Error("bad row type accepted")
	}
}

func TestSliceReaderEOF(t *testing.T) {
	r := SliceReader(nil)
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("empty reader: %v", err)
	}
}

func TestStreamReplayability(t *testing.T) {
	// Count how many times the divisor factory runs: with-join algorithms
	// scan it more than once, which is why StreamInput.Open is a factory.
	dividend, divisor := streamInputs()
	opens := 0
	orig := divisor.Open
	divisor.Open = func() (RowReader, error) {
		opens++
		return orig()
	}
	err := DivideStream(dividend, divisor, nil,
		&Options{Algorithm: HashAggregationJoin}, func([]any) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if opens < 2 {
		t.Errorf("divisor opened %d times; with-join algorithms need a replayable stream", opens)
	}
}
