package reldiv

// One benchmark per paper table, plus ablation benches for the design
// choices DESIGN.md calls out. Simulated-I/O and counted-CPU milliseconds
// are attached as custom metrics (sim-io-ms/op, counted-cpu-ms/op) so the
// paper-style cost figures appear alongside Go wall time.

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/buffer"
	"repro/internal/costmodel"
	"repro/internal/disk"
	"repro/internal/division"
	"repro/internal/exec"
	"repro/internal/parallel"
	"repro/internal/workload"
)

// BenchmarkTable1CostUnits exercises the cost-unit pricing path (Table 1).
func BenchmarkTable1CostUnits(b *testing.B) {
	u := costmodel.PaperUnits()
	c := exec.Counters{Comp: 1000, Hash: 500, Move: 10, Bit: 2000}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if c.CostMS(u.Comp, u.Hash, u.Move, u.Bit) <= 0 {
			b.Fatal("bad cost")
		}
	}
}

// BenchmarkTable2Analytic regenerates the full analytical grid (Table 2).
func BenchmarkTable2Analytic(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := costmodel.Table2()
		if len(rows) != 9 {
			b.Fatal("bad grid")
		}
	}
}

// BenchmarkTable3IOModel exercises the Table 3 I/O pricing on a live scan.
func BenchmarkTable3IOModel(b *testing.B) {
	inst, err := workload.Generate(workload.PaperCase(25, 100, 1))
	if err != nil {
		b.Fatal(err)
	}
	pool := buffer.New(buffer.PaperPoolBytes)
	rel, err := workload.Load(pool, inst, disk.PaperPageSize)
	if err != nil {
		b.Fatal(err)
	}
	cost := disk.PaperCost()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.Drain(exec.NewTableScan(rel.Dividend, false)); err != nil {
			b.Fatal(err)
		}
		_ = rel.DividendDev.Stats().TotalCostMS(cost)
	}
}

// BenchmarkTable4 reruns the experimental grid, one sub-benchmark per
// (algorithm, |S|, |Q|) cell, reporting the deterministic paper-style costs
// as custom metrics.
func BenchmarkTable4(b *testing.B) {
	cfg := bench.PaperConfig()
	for _, s := range []int{25, 100, 400} {
		for _, q := range []int{25, 100, 400} {
			for _, alg := range division.Algorithms {
				name := fmt.Sprintf("S=%d/Q=%d/%s", s, q, alg)
				b.Run(name, func(b *testing.B) {
					var last bench.Cell
					for i := 0; i < b.N; i++ {
						cell, err := bench.RunCell(alg, s, q, cfg)
						if err != nil {
							b.Fatal(err)
						}
						last = cell
					}
					b.ReportMetric(last.SimulatedIO, "sim-io-ms/op")
					b.ReportMetric(last.CountedCPUMS, "counted-cpu-ms/op")
				})
			}
		}
	}
}

// BenchmarkTable4AnalyticGeometry is the grid under the §4.6 page geometry
// (5 dividend tuples per page), the regime where the paper's "within ~10%"
// claim lives. Reduced sizes keep it affordable.
func BenchmarkTable4AnalyticGeometry(b *testing.B) {
	cfg := bench.AnalyticGeometryConfig()
	for _, sq := range [][2]int{{25, 25}, {100, 100}} {
		for _, alg := range division.Algorithms {
			name := fmt.Sprintf("S=%d/Q=%d/%s", sq[0], sq[1], alg)
			b.Run(name, func(b *testing.B) {
				var last bench.Cell
				for i := 0; i < b.N; i++ {
					cell, err := bench.RunCell(alg, sq[0], sq[1], cfg)
					if err != nil {
						b.Fatal(err)
					}
					last = cell
				}
				b.ReportMetric(last.TotalMS(), "paper-total-ms/op")
			})
		}
	}
}

// BenchmarkDuplicateSweep measures the duplicate-handling claim (hash-
// division ignores duplicates; all other algorithms pay preprocessing).
func BenchmarkDuplicateSweep(b *testing.B) {
	cfg := bench.AnalyticGeometryConfig()
	for i := 0; i < b.N; i++ {
		if _, err := bench.DuplicateSweep(25, 100, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDilutionSweep measures the §4.6 speculation workloads.
func BenchmarkDilutionSweep(b *testing.B) {
	cfg := bench.AnalyticGeometryConfig()
	for i := 0; i < b.N; i++ {
		if _, err := bench.DilutionSweep(50, 200, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSpec(b *testing.B, inst *workload.Instance) division.Spec {
	b.Helper()
	return division.Spec{
		Dividend:    exec.NewMemScan(workload.TranscriptSchema, inst.Dividend),
		Divisor:     exec.NewMemScan(workload.CourseSchema, inst.Divisor),
		DivisorCols: []int{1},
	}
}

// BenchmarkBitmapVsCounter ablates §3.3's sixth observation: bit maps vs
// plain counters in the quotient table (counters need duplicate-free
// dividends).
func BenchmarkBitmapVsCounter(b *testing.B) {
	inst, err := workload.Generate(workload.PaperCase(100, 400, 1))
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		opts division.HashDivisionOptions
	}{
		{"bitmap", division.HashDivisionOptions{}},
		{"counter", division.HashDivisionOptions{CountersOnly: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				op := division.NewHashDivision(benchSpec(b, inst), division.Env{}, mode.opts)
				n, err := exec.Drain(op)
				if err != nil {
					b.Fatal(err)
				}
				if n != 400 {
					b.Fatalf("quotient = %d", n)
				}
			}
		})
	}
}

// BenchmarkEarlyEmit ablates the §3.3 streaming modification against the
// stop-and-go original.
func BenchmarkEarlyEmit(b *testing.B) {
	inst, err := workload.Generate(workload.PaperCase(100, 400, 1))
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		opts division.HashDivisionOptions
	}{
		{"stop-and-go", division.HashDivisionOptions{}},
		{"early-emit", division.HashDivisionOptions{EarlyEmit: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				op := division.NewHashDivision(benchSpec(b, inst), division.Env{}, mode.opts)
				if _, err := exec.Drain(op); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSortEarlyAgg ablates duplicate elimination inside the sort
// (no intermediate run contains duplicates) against deduplicating after the
// sort, on a dividend with 4× duplication.
func BenchmarkSortEarlyAgg(b *testing.B) {
	cfg := workload.PaperCase(25, 100, 1)
	cfg.DuplicateFactor = 4
	inst, err := workload.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	keys := []int{0, 1}
	newEnv := func() (*buffer.Pool, *disk.Device) {
		return buffer.New(1 << 20), disk.NewDevice("runs", disk.PaperRunPageSize)
	}
	b.Run("dedup-inside-sort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pool, dev := newEnv()
			s := exec.NewSort(exec.NewMemScan(workload.TranscriptSchema, inst.Dividend), exec.SortConfig{
				Keys: keys, Dedup: true, MemoryBytes: 16 * 1024, Pool: pool, TempDev: dev,
			})
			n, err := exec.Drain(s)
			if err != nil {
				b.Fatal(err)
			}
			if n != 2500 {
				b.Fatalf("dedup kept %d", n)
			}
		}
	})
	b.Run("dedup-after-sort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pool, dev := newEnv()
			s := exec.NewSort(exec.NewMemScan(workload.TranscriptSchema, inst.Dividend), exec.SortConfig{
				Keys: keys, MemoryBytes: 16 * 1024, Pool: pool, TempDev: dev,
			})
			d := exec.NewHashDedup(s, nil)
			n, err := exec.Drain(d)
			if err != nil {
				b.Fatal(err)
			}
			if n != 2500 {
				b.Fatalf("dedup kept %d", n)
			}
		}
	})
}

// BenchmarkHashLoad ablates the average-bucket-size parameter hbs (§4.6 uses
// 2): longer chains trade memory for comparisons.
func BenchmarkHashLoad(b *testing.B) {
	inst, err := workload.Generate(workload.PaperCase(100, 400, 1))
	if err != nil {
		b.Fatal(err)
	}
	for _, hbs := range []float64{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("hbs=%g", hbs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				env := division.Env{HBS: hbs, ExpectedDivisor: 100, ExpectedQuotient: 400}
				op := division.NewHashDivision(benchSpec(b, inst), env, division.HashDivisionOptions{})
				if _, err := exec.Drain(op); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPartitioning compares the two §3.4 overflow strategies at the
// same cluster count.
func BenchmarkPartitioning(b *testing.B) {
	inst, err := workload.Generate(workload.PaperCase(100, 400, 1))
	if err != nil {
		b.Fatal(err)
	}
	for _, strat := range []division.PartitionStrategy{
		division.QuotientPartitioning, division.DivisorPartitioning,
	} {
		b.Run(strat.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				env := division.Env{
					Pool:    buffer.New(1 << 20),
					TempDev: disk.NewDevice("temp", disk.PaperRunPageSize),
				}
				op := division.NewPartitionedHashDivision(benchSpec(b, inst), env, strat, 4, division.HashDivisionOptions{})
				n, err := exec.Drain(op)
				if err != nil {
					b.Fatal(err)
				}
				if n != 400 {
					b.Fatalf("quotient = %d", n)
				}
			}
		})
	}
}

// BenchmarkParallelWorkers measures §6 scaling for both strategies.
func BenchmarkParallelWorkers(b *testing.B) {
	inst, err := workload.Generate(workload.PaperCase(100, 2000, 1))
	if err != nil {
		b.Fatal(err)
	}
	for _, strat := range []division.PartitionStrategy{
		division.QuotientPartitioning, division.DivisorPartitioning,
	} {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", strat, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := parallel.Divide(benchSpec(b, inst), parallel.Config{
						Workers: workers, Strategy: strat,
					})
					if err != nil {
						b.Fatal(err)
					}
					if len(res.Quotient) != 2000 {
						b.Fatalf("quotient = %d", len(res.Quotient))
					}
				}
			})
		}
	}
}

// BenchmarkBitVectorFilter ablates Babb filtering on a noisy dividend (most
// tuples match nothing and can be dropped before shipping).
func BenchmarkBitVectorFilter(b *testing.B) {
	inst, err := workload.Generate(workload.Config{
		DivisorTuples:      100,
		QuotientCandidates: 500,
		FullFraction:       0.5,
		MatchFraction:      0.3,
		NoisePerCandidate:  50,
		Shuffle:            true,
		Seed:               1,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, filter := range []bool{false, true} {
		name := "filter=off"
		if filter {
			name = "filter=on"
		}
		b.Run(name, func(b *testing.B) {
			var net parallel.NetworkStats
			for i := 0; i < b.N; i++ {
				res, err := parallel.Divide(benchSpec(b, inst), parallel.Config{
					Workers: 4, Strategy: division.QuotientPartitioning, BitVectorFilter: filter,
				})
				if err != nil {
					b.Fatal(err)
				}
				net = res.Network
			}
			b.ReportMetric(float64(net.BytesShipped), "net-bytes/op")
			b.ReportMetric(float64(net.TuplesFiltered), "filtered/op")
		})
	}
}

// BenchmarkBufferPolicy ablates LRU against second-chance Clock on a mixed
// workload: a hot set re-fixed continuously while a sequential scan streams
// past, the pattern where a scan can flush an LRU cache. The hit ratio is
// reported as a custom metric.
func BenchmarkBufferPolicy(b *testing.B) {
	const pageSize = 1024
	for _, pol := range []buffer.Policy{buffer.LRU, buffer.Clock} {
		b.Run(pol.String(), func(b *testing.B) {
			dev := disk.NewDevice("b", pageSize)
			dev.AllocExtent(256)
			var hits, total int
			for i := 0; i < b.N; i++ {
				pool := buffer.NewWithPolicy(16*pageSize, pol)
				for round := 0; round < 50; round++ {
					// Touch the 4-page hot set (kept), then 8 scan pages
					// (release hint).
					for pg := disk.PageID(0); pg < 4; pg++ {
						h, err := pool.Fix(dev, pg)
						if err != nil {
							b.Fatal(err)
						}
						h.Unfix(true)
					}
					for k := 0; k < 8; k++ {
						pg := disk.PageID(4 + (round*8+k)%252)
						h, err := pool.Fix(dev, pg)
						if err != nil {
							b.Fatal(err)
						}
						h.Unfix(false)
					}
				}
				s := pool.Stats()
				hits += s.Hits
				total += s.Hits + s.Misses
			}
			b.ReportMetric(float64(hits)/float64(total), "hit-ratio")
		})
	}
}

// BenchmarkPublicAPI measures the end-to-end façade.
func BenchmarkPublicAPI(b *testing.B) {
	orders := NewRelation("orders", Int64Col("customer"), Int64Col("product"))
	products := NewRelation("products", Int64Col("product"))
	for p := 0; p < 50; p++ {
		products.MustInsert(p)
	}
	for c := 0; c < 200; c++ {
		for p := 0; p < 50; p++ {
			orders.MustInsert(c, p)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, err := Divide(orders, products, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		if q.NumRows() != 200 {
			b.Fatalf("quotient = %d", q.NumRows())
		}
	}
}

// BenchmarkBatchVsTuple is the PR's headline ablation: hash-division over
// the Table 4 (|S|=100, |Q|=400) workload on the classic tuple path vs the
// vectorized batch path at several batch sizes. The two paths report
// identical Counters; only wall clock differs. `go test -bench BatchVsTuple`
// prints the comparison; speedup/op makes the ratio explicit.
func BenchmarkBatchVsTuple(b *testing.B) {
	inst, err := workload.Generate(workload.PaperCase(100, 400, 1))
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, batchSize int, tupleAtATime bool) {
		for i := 0; i < b.N; i++ {
			sp := benchSpec(b, inst)
			if tupleAtATime {
				sp.Dividend = exec.Opaque(sp.Dividend)
				sp.Divisor = exec.Opaque(sp.Divisor)
			}
			env := division.Env{
				Pool:      buffer.New(1 << 20),
				TempDev:   disk.NewDevice("temp", disk.PaperRunPageSize),
				BatchSize: batchSize,
			}
			n, err := exec.Drain(division.NewHashDivision(sp, env, division.HashDivisionOptions{}))
			if err != nil {
				b.Fatal(err)
			}
			if n != 400 {
				b.Fatalf("quotient = %d", n)
			}
		}
	}
	b.Run("tuple", func(b *testing.B) { run(b, 0, true) })
	for _, bs := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("batch=%d", bs), func(b *testing.B) { run(b, bs, false) })
	}
}

// BenchmarkBatchAblationGrid runs the full bench.BatchAblation grid once per
// iteration and reports the batch-1024 speedups as custom metrics — the same
// numbers `divbench batch -json` persists to BENCH_divbench.json.
func BenchmarkBatchAblationGrid(b *testing.B) {
	if testing.Short() {
		b.Skip("full ablation grid is slow")
	}
	cfg := bench.PaperConfig()
	var cells []bench.AblationCell
	for i := 0; i < b.N; i++ {
		var err error
		cells, err = bench.BatchAblation(cfg, []int{100}, []int{1024}, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, c := range cells {
		b.ReportMetric(c.Speedup, fmt.Sprintf("speedup-s%d-q%d-bs%d", c.S, c.Q, c.BatchSize))
	}
}
