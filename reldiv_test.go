package reldiv

import (
	"bytes"
	"strings"
	"testing"
)

func ordersProducts() (*Relation, *Relation) {
	orders := NewRelation("orders", Int64Col("customer"), Int64Col("product"))
	products := NewRelation("products", Int64Col("product"))
	for _, p := range []int{10, 20, 30} {
		products.MustInsert(p)
	}
	// Customer 1 buys everything, 2 misses product 30, 3 buys everything
	// plus an item outside the divisor.
	for _, p := range []int{10, 20, 30} {
		orders.MustInsert(1, p)
	}
	orders.MustInsert(2, 10)
	orders.MustInsert(2, 20)
	for _, p := range []int{10, 20, 30, 99} {
		orders.MustInsert(3, p)
	}
	return orders, products
}

func quotientCustomers(t *testing.T, q *Relation) map[int64]bool {
	t.Helper()
	out := make(map[int64]bool)
	for _, row := range q.Rows() {
		out[row[0].(int64)] = true
	}
	return out
}

func TestDivideDefault(t *testing.T) {
	orders, products := ordersProducts()
	q, err := Divide(orders, products, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := quotientCustomers(t, q)
	if len(got) != 2 || !got[1] || !got[3] {
		t.Errorf("quotient = %v, want {1,3}", got)
	}
	if cols := q.Columns(); len(cols) != 1 || cols[0] != "customer" {
		t.Errorf("quotient columns = %v", cols)
	}
	if !strings.Contains(q.Name(), "÷") {
		t.Errorf("quotient name = %q", q.Name())
	}
}

func TestDivideEveryAlgorithm(t *testing.T) {
	orders, products := ordersProducts()
	for _, alg := range []Algorithm{Naive, SortAggregationJoin, HashAggregationJoin, HashDivision} {
		q, err := Divide(orders, products, nil, &Options{Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		got := quotientCustomers(t, q)
		if len(got) != 2 || !got[1] || !got[3] {
			t.Errorf("%v: quotient = %v", alg, got)
		}
	}
}

func TestDivideExplicitOn(t *testing.T) {
	// Dividend column named differently than the divisor's.
	taken := NewRelation("taken", Int64Col("student"), Int64Col("cno"))
	courses := NewRelation("courses", Int64Col("course_no"))
	courses.MustInsert(1)
	taken.MustInsert(7, 1)
	q, err := Divide(taken, courses, []string{"cno"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumRows() != 1 {
		t.Errorf("quotient = %v", q.Rows())
	}
	// Default name matching fails for mismatched names.
	if _, err := Divide(taken, courses, nil, nil); err == nil {
		t.Error("expected error when divisor column name is absent from dividend")
	}
}

func TestDivideParallel(t *testing.T) {
	orders, products := ordersProducts()
	for _, opts := range []*Options{
		{Workers: 4},
		{Workers: 4, DivisorPartitioned: true},
		{Workers: 3, BitVectorFilter: true},
	} {
		q, err := Divide(orders, products, nil, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		got := quotientCustomers(t, q)
		if len(got) != 2 || !got[1] || !got[3] {
			t.Errorf("%+v: quotient = %v", opts, got)
		}
	}
}

func TestDivideWithMemoryBudget(t *testing.T) {
	orders := NewRelation("orders", Int64Col("customer"), Int64Col("product"))
	products := NewRelation("products", Int64Col("product"))
	for p := 0; p < 5; p++ {
		products.MustInsert(p)
	}
	for c := 0; c < 500; c++ {
		for p := 0; p < 5; p++ {
			orders.MustInsert(c, p)
		}
	}
	q, err := Divide(orders, products, nil, &Options{MemoryBudget: 24 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	if q.NumRows() != 500 {
		t.Errorf("quotient = %d rows, want 500", q.NumRows())
	}
}

func TestDivideEarlyEmit(t *testing.T) {
	orders, products := ordersProducts()
	q, err := Divide(orders, products, nil, &Options{Algorithm: HashDivision, EarlyEmit: true})
	if err != nil {
		t.Fatal(err)
	}
	got := quotientCustomers(t, q)
	if len(got) != 2 {
		t.Errorf("early emit quotient = %v", got)
	}
}

func TestStringColumns(t *testing.T) {
	transcript := NewRelation("transcript", StringCol("student", 8), StringCol("course", 12))
	courses := NewRelation("courses", StringCol("course", 12))
	courses.MustInsert("Database1")
	courses.MustInsert("Database2")
	transcript.MustInsert("Ann", "Database1")
	transcript.MustInsert("Ann", "Database2")
	transcript.MustInsert("Barb", "Database2")
	q, err := Divide(transcript, courses, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumRows() != 1 || q.Row(0)[0].(string) != "Ann" {
		t.Errorf("quotient = %v", q.Rows())
	}
}

func TestExplainPrefersHashDivision(t *testing.T) {
	orders, products := ordersProducts()
	plan, err := Explain(orders, products, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Chosen != HashDivision {
		t.Errorf("chosen = %v, want hash-division", plan.Chosen)
	}
	if len(plan.EstimatedMS) != 4 {
		t.Errorf("estimates for %d algorithms, want 4", len(plan.EstimatedMS))
	}
	if plan.EstimatedMS[Naive] <= plan.EstimatedMS[HashDivision] {
		t.Error("naive should be estimated costlier than hash-division")
	}
}

func TestFilterProjectHelpers(t *testing.T) {
	orders, _ := ordersProducts()
	only1 := orders.Filter(func(row []any) bool { return row[0].(int64) == 1 })
	if only1.NumRows() != 3 {
		t.Errorf("filter = %d rows", only1.NumRows())
	}
	proj, err := orders.Project("product")
	if err != nil {
		t.Fatal(err)
	}
	if len(proj.Columns()) != 1 || proj.Columns()[0] != "product" {
		t.Errorf("project columns = %v", proj.Columns())
	}
	if _, err := orders.Project("nope"); err == nil {
		t.Error("projecting a missing column should fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orders, _ := ordersProducts()
	var buf bytes.Buffer
	if err := orders.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := FromCSV(&buf, "orders", Int64Col("customer"), Int64Col("product"))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != orders.NumRows() {
		t.Errorf("round trip: %d vs %d rows", back.NumRows(), orders.NumRows())
	}
	for i := range orders.tuples {
		if orders.schema.CompareAll(orders.tuples[i], back.tuples[i]) != 0 {
			t.Fatalf("row %d differs", i)
		}
	}
}

func TestFromCSVErrors(t *testing.T) {
	if _, err := FromCSV(strings.NewReader("a,b\n"), "x", Int64Col("v"), Int64Col("w")); err == nil {
		t.Error("non-numeric field accepted for int column")
	}
	if _, err := FromCSV(strings.NewReader("1,2,3\n"), "x", Int64Col("v")); err == nil {
		t.Error("wrong arity accepted")
	}
}

func TestParseAlgorithm(t *testing.T) {
	a, err := ParseAlgorithm("hash-division")
	if err != nil || a != HashDivision {
		t.Errorf("ParseAlgorithm = %v, %v", a, err)
	}
	if _, err := ParseAlgorithm("bogus"); err == nil {
		t.Error("bogus algorithm accepted")
	}
	if HashDivision.String() != "hash-division" {
		t.Errorf("String = %q", HashDivision.String())
	}
}

func TestNoJoinVariantsExposedButGuarded(t *testing.T) {
	// The no-join variants are reachable when forced, matching the paper's
	// first-example setting.
	orders := NewRelation("orders", Int64Col("customer"), Int64Col("product"))
	products := NewRelation("products", Int64Col("product"))
	products.MustInsert(1)
	products.MustInsert(2)
	orders.MustInsert(7, 1)
	orders.MustInsert(7, 2)
	orders.MustInsert(8, 1)
	for _, alg := range []Algorithm{SortAggregation, HashAggregation} {
		q, err := Divide(orders, products, nil, &Options{Algorithm: alg, AssumeUniqueInputs: true})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		got := quotientCustomers(t, q)
		if len(got) != 1 || !got[7] {
			t.Errorf("%v: quotient = %v", alg, got)
		}
	}
}

func TestEmptyDivisor(t *testing.T) {
	orders, _ := ordersProducts()
	empty := NewRelation("products", Int64Col("product"))
	q, err := Divide(orders, empty, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumRows() != 0 {
		t.Errorf("empty divisor quotient = %v", q.Rows())
	}
}

func TestDivideWithStats(t *testing.T) {
	orders, products := ordersProducts()
	q, st, err := DivideWithStats(orders, products, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumRows() != 2 {
		t.Errorf("quotient = %d rows", q.NumRows())
	}
	if st.DividendTuples != int64(orders.NumRows()) {
		t.Errorf("DividendTuples = %d, want %d", st.DividendTuples, orders.NumRows())
	}
	if st.DivisorDistinct != 3 {
		t.Errorf("DivisorDistinct = %d", st.DivisorDistinct)
	}
	if st.DiscardedNoMatch != 1 { // customer 3's product 99
		t.Errorf("DiscardedNoMatch = %d", st.DiscardedNoMatch)
	}
	if st.Candidates != 3 || st.QuotientRows != 2 {
		t.Errorf("candidates/quotient = %d/%d", st.Candidates, st.QuotientRows)
	}
	if st.PeakTableBytes <= 0 {
		t.Error("no peak memory recorded")
	}
}

// TestOptionsMatrix runs every meaningful Options combination on one
// workload and demands the identical quotient from all of them.
func TestOptionsMatrix(t *testing.T) {
	orders := NewRelation("orders", Int64Col("customer"), Int64Col("product"))
	products := NewRelation("products", Int64Col("product"))
	for p := 0; p < 12; p++ {
		products.MustInsert(p)
	}
	want := 0
	for c := 0; c < 120; c++ {
		full := c%3 == 0
		if full {
			want++
		}
		for p := 0; p < 12; p++ {
			if full || (c+p)%2 == 0 {
				orders.MustInsert(c, p)
			}
		}
		orders.MustInsert(c, 999) // noise
	}
	matrix := []*Options{
		nil,
		{Algorithm: Naive},
		{Algorithm: SortAggregationJoin},
		{Algorithm: HashAggregationJoin},
		{Algorithm: HashDivision},
		{Algorithm: HashDivision, EarlyEmit: true},
		{MemoryBudget: 12 * 1024},
		{Workers: 3},
		{Workers: 3, DivisorPartitioned: true},
		{Workers: 3, BitVectorFilter: true},
		{Workers: 2, DivisorPartitioned: true, BitVectorFilter: true},
	}
	for i, opts := range matrix {
		q, err := Divide(orders, products, nil, opts)
		if err != nil {
			t.Fatalf("case %d (%+v): %v", i, opts, err)
		}
		if q.NumRows() != want {
			t.Errorf("case %d (%+v): %d rows, want %d", i, opts, q.NumRows(), want)
		}
	}
}

func TestInsertErrors(t *testing.T) {
	r := NewRelation("r", Int64Col("a"))
	if err := r.Insert("x"); err == nil {
		t.Error("string into int column accepted")
	}
	if err := r.Insert(1, 2); err == nil {
		t.Error("wrong arity accepted")
	}
}
