// Suppliers: the classic suppliers-parts division (Codd's motivating
// example) plus a set-valued integrity constraint — the use case the paper's
// introduction cites ("database systems that ... enforce complex integrity
// constraints on sets").
//
// Run with:
//
//	go run ./examples/suppliers
package main

import (
	"fmt"
	"log"
	"math/rand"

	reldiv "repro"
)

func main() {
	// supplies(supplier, part): which supplier can deliver which part.
	supplies := reldiv.NewRelation("supplies",
		reldiv.Int64Col("supplier"), reldiv.Int64Col("part"))
	// critical(part): the parts every certified supplier must stock.
	critical := reldiv.NewRelation("critical", reldiv.Int64Col("part"))

	const nParts = 40
	criticalParts := []int{3, 7, 11, 19}
	for _, p := range criticalParts {
		critical.MustInsert(p)
	}

	rng := rand.New(rand.NewSource(7))
	const nSuppliers = 200
	fullSuppliers := 0
	for s := 1; s <= nSuppliers; s++ {
		stockAll := rng.Float64() < 0.3
		if stockAll {
			fullSuppliers++
		}
		for p := 1; p <= nParts; p++ {
			isCritical := false
			for _, c := range criticalParts {
				if p == c {
					isCritical = true
				}
			}
			switch {
			case isCritical && stockAll:
				supplies.MustInsert(s, p)
			case rng.Float64() < 0.4:
				supplies.MustInsert(s, p)
			}
		}
	}

	// Which suppliers stock ALL critical parts?
	certified, err := reldiv.Divide(supplies, critical, []string{"part"}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("suppliers: %d, supply rows: %d, critical parts: %d\n",
		nSuppliers, supplies.NumRows(), critical.NumRows())
	fmt.Printf("suppliers stocking all critical parts: %d (>= %d stocked by construction)\n",
		certified.NumRows(), fullSuppliers)

	// Integrity constraint: "every supplier in the certified list must
	// stock all critical parts." Enforced by dividing and diffing.
	certifiedSet := make(map[int64]bool, certified.NumRows())
	for _, row := range certified.Rows() {
		certifiedSet[row[0].(int64)] = true
	}
	claimed := []int64{1, 2, 3} // suppliers claiming certification
	for _, s := range claimed {
		if certifiedSet[s] {
			fmt.Printf("supplier %d: certification VALID\n", s)
		} else {
			fmt.Printf("supplier %d: certification VIOLATED (missing critical parts)\n", s)
		}
	}

	// Compare all four algorithms on the same instance.
	fmt.Println("\nalgorithm agreement check:")
	for _, alg := range []reldiv.Algorithm{
		reldiv.Naive, reldiv.SortAggregationJoin, reldiv.HashAggregationJoin, reldiv.HashDivision,
	} {
		q, err := reldiv.Divide(supplies, critical, []string{"part"}, &reldiv.Options{Algorithm: alg})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-20s -> %d certified suppliers\n", alg, q.NumRows())
	}

	// And under a tight memory budget, division transparently escalates to
	// quotient partitioning (§3.4).
	budgeted, err := reldiv.Divide(supplies, critical, []string{"part"},
		&reldiv.Options{MemoryBudget: 8 * 1024})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith an 8 KB hash table budget (partitioned): %d certified suppliers\n",
		budgeted.NumRows())
}
