// Parallel: hash-division on a simulated shared-nothing multi-processor
// (§6 of the paper), comparing quotient partitioning (replicated divisor)
// against divisor partitioning (collection phase), with and without Babb
// bit-vector filtering of the dividend shuffle.
//
// Run with:
//
//	go run ./examples/parallel
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/division"
	"repro/internal/exec"
	"repro/internal/parallel"
	"repro/internal/workload"
)

func main() {
	// A diluted workload with non-matching noise, where the bit-vector
	// filter has something to drop.
	inst, err := workload.Generate(workload.Config{
		DivisorTuples:      200,
		QuotientCandidates: 2000,
		FullFraction:       0.3,
		MatchFraction:      0.8,
		NoisePerCandidate:  20,
		Shuffle:            true,
		Seed:               42,
	})
	if err != nil {
		log.Fatal(err)
	}
	spec := func() division.Spec {
		return division.Spec{
			Dividend:    exec.NewMemScan(workload.TranscriptSchema, inst.Dividend),
			Divisor:     exec.NewMemScan(workload.CourseSchema, inst.Divisor),
			DivisorCols: []int{1},
		}
	}
	fmt.Printf("dividend %d tuples, divisor %d tuples, true quotient %d\n\n",
		len(inst.Dividend), len(inst.Divisor), len(inst.QuotientIDs))

	fmt.Printf("%-28s %7s %10s %12s %10s %8s\n",
		"configuration", "workers", "elapsed", "net bytes", "filtered", "quotient")
	run := func(name string, cfg parallel.Config) {
		res, err := parallel.Divide(spec(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		if len(res.Quotient) != len(inst.QuotientIDs) {
			log.Fatalf("%s: wrong quotient size %d, want %d", name, len(res.Quotient), len(inst.QuotientIDs))
		}
		fmt.Printf("%-28s %7d %10s %12d %10d %8d\n",
			name, cfg.Workers, res.Elapsed.Round(10*time.Microsecond),
			res.Network.BytesShipped, res.Network.TuplesFiltered, len(res.Quotient))
	}

	for _, w := range []int{1, 2, 4, 8} {
		run("quotient-partitioned", parallel.Config{
			Workers: w, Strategy: division.QuotientPartitioning,
		})
	}
	fmt.Println()
	for _, w := range []int{1, 2, 4, 8} {
		run("divisor-partitioned", parallel.Config{
			Workers: w, Strategy: division.DivisorPartitioning,
		})
	}
	fmt.Println()
	for _, w := range []int{1, 2, 4, 8} {
		run("shared-table", parallel.Config{
			Workers: w, Strategy: division.QuotientPartitioning, Path: parallel.PathSharedTable,
		})
	}
	fmt.Println()
	run("quotient-part + bitvector", parallel.Config{
		Workers: 4, Strategy: division.QuotientPartitioning, BitVectorFilter: true,
	})
	run("divisor-part + bitvector", parallel.Config{
		Workers: 4, Strategy: division.DivisorPartitioning, BitVectorFilter: true,
	})
	run("quotient-part, coordinator", parallel.Config{
		Workers: 4, Strategy: division.QuotientPartitioning, Path: parallel.PathCoordinator,
	})
	fmt.Println("\nNotes (§6): quotient partitioning replicates the divisor but needs no")
	fmt.Println("collection phase; divisor partitioning ships less divisor state but the")
	fmt.Println("collection site re-divides the tagged quotient clusters. The bit vector")
	fmt.Println("filter drops dividend tuples with no divisor match before shipping.")
	fmt.Println("The default morsel path ships worker-to-worker from a shared morsel")
	fmt.Println("queue; the shared-table path skips the exchange entirely on one node.")
}
