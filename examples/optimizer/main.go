// Optimizer: the rewrite rule from the paper's conclusion in action.
//
// A system without a division operator evaluates "students who took all
// database courses" as GROUP BY + HAVING COUNT(*) = (SELECT COUNT(*) ...)
// over a semi-join. The rewrite detects that pattern and replaces it with
// relational division, which compiles to hash-division — and does strictly
// less work (§5.2: an optimizer that fails to rewrite "may be evaluated
// using an inferior strategy").
//
// Run with:
//
//	go run ./examples/optimizer
package main

import (
	"fmt"
	"log"

	"repro/internal/division"
	"repro/internal/exec"
	"repro/internal/rewrite"
	"repro/internal/workload"
)

func main() {
	inst, err := workload.Generate(workload.Config{
		DivisorTuples:      50,
		QuotientCandidates: 500,
		FullFraction:       0.3,
		MatchFraction:      0.8,
		NoisePerCandidate:  5,
		Shuffle:            true,
		Seed:               11,
	})
	if err != nil {
		log.Fatal(err)
	}

	transcript := rewrite.NewRel("transcript", workload.TranscriptSchema, func() exec.Operator {
		return exec.NewMemScan(workload.TranscriptSchema, inst.Dividend)
	})
	courses := rewrite.NewRel("courses", workload.CourseSchema, func() exec.Operator {
		return exec.NewMemScan(workload.CourseSchema, inst.Divisor)
	})

	// The aggregate encoding the application (or SQL frontend) produced.
	query := &rewrite.CountEqCard{
		Input: &rewrite.GroupCount{
			Input: &rewrite.SemiJoin{
				Left:      transcript,
				Right:     courses,
				LeftCols:  []int{1},
				RightCols: []int{0},
			},
			GroupCols: []int{0},
		},
		Of: courses,
	}

	fmt.Println("original plan (aggregate encoding of the for-all query):")
	fmt.Print(rewrite.Format(query))

	run := func(name string, plan rewrite.Node) int {
		var c exec.Counters
		op, err := rewrite.Compile(plan, division.Env{Counters: &c})
		if err != nil {
			log.Fatal(err)
		}
		n, err := exec.Drain(op)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s -> %4d rows, counted CPU %8.1f ms (Table 1 units)\n",
			name, n, c.CostMS(0.03, 0.03, 0.4, 0.003))
		return n
	}
	before := run("aggregate plan", query)

	rewritten, changed := rewrite.Rewrite(query)
	if !changed {
		log.Fatal("pattern not detected")
	}
	fmt.Println("\nrewritten plan (for-all detected):")
	fmt.Print(rewrite.Format(rewritten))
	after := run("division plan", rewritten)

	if before != after {
		log.Fatalf("rewrite changed the answer: %d vs %d", before, after)
	}
	fmt.Printf("\nground truth: %d students take all %d courses\n",
		len(inst.QuotientIDs), len(inst.Divisor))
}
