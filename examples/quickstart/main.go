// Quickstart: relational division in three relations and one call.
//
// "Which customers bought EVERY product in the promotion?" is a universal
// quantification — relational division. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	reldiv "repro"
)

func main() {
	orders := reldiv.NewRelation("orders",
		reldiv.Int64Col("customer"), reldiv.Int64Col("product"))
	promotion := reldiv.NewRelation("promotion", reldiv.Int64Col("product"))

	for _, p := range []int{101, 102, 103} {
		promotion.MustInsert(p)
	}
	// Customer 1 bought all three; customer 2 skipped 103; customer 3
	// bought everything plus an unrelated product.
	for _, p := range []int{101, 102, 103} {
		orders.MustInsert(1, p)
	}
	orders.MustInsert(2, 101)
	orders.MustInsert(2, 102)
	for _, p := range []int{101, 102, 103, 999} {
		orders.MustInsert(3, p)
	}

	// Divide: the quotient holds the customers paired with every product.
	quotient, err := reldiv.Divide(orders, promotion, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("customers who bought every promoted product:")
	for _, row := range quotient.Rows() {
		fmt.Printf("  customer %d\n", row[0])
	}

	// Explain shows the cost-based plan the library picked.
	plan, err := reldiv.Explain(orders, promotion, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplanner chose: %v\n", plan.Chosen)
	for alg, ms := range plan.EstimatedMS {
		fmt.Printf("  %-16s %8.1f ms (analytical)\n", alg, ms)
	}
}
