// University: the paper's two running examples (§2) end to end.
//
//  1. Students who have taken ALL courses offered by the university.
//  2. Students who have taken all DATABASE courses — the restricted-divisor
//     case where aggregation-based division needs a preceding semi-join,
//     while hash-division handles it directly.
//
// Run with:
//
//	go run ./examples/university
package main

import (
	"fmt"
	"log"
	"strings"

	reldiv "repro"
)

func main() {
	courses := reldiv.NewRelation("courses",
		reldiv.Int64Col("course_no"), reldiv.StringCol("title", 24))
	transcript := reldiv.NewRelation("transcript",
		reldiv.StringCol("student", 8), reldiv.Int64Col("course_no"))

	courseList := []struct {
		no    int
		title string
	}{
		{101, "database systems 1"},
		{102, "database systems 2"},
		{201, "optics"},
		{202, "mechanics"},
	}
	for _, c := range courseList {
		courses.MustInsert(c.no, c.title)
	}

	take := func(student string, nos ...int) {
		for _, no := range nos {
			transcript.MustInsert(student, no)
		}
	}
	take("Ann", 101, 102, 201, 202) // everything
	take("Barb", 101, 102, 202)     // all database courses, no optics
	take("Carl", 101, 201, 202)     // misses database systems 2
	take("Dave", 101, 102)          // all database courses only

	// Example 1: students who have taken all courses offered.
	allCourses, err := courses.Project("course_no")
	if err != nil {
		log.Fatal(err)
	}
	q1, err := reldiv.Divide(transcript, allCourses, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("students who have taken ALL courses:")
	printStudents(q1)

	// Example 2: the divisor is restricted by a prior selection — courses
	// whose title contains "database".
	dbCourses, err := courses.
		Filter(func(row []any) bool { return strings.Contains(row[1].(string), "database") }).
		Project("course_no")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndatabase courses in the divisor: %d\n", dbCourses.NumRows())

	fmt.Println("students who have taken all DATABASE courses, per algorithm:")
	for _, alg := range []reldiv.Algorithm{
		reldiv.Naive, reldiv.SortAggregationJoin, reldiv.HashAggregationJoin, reldiv.HashDivision,
	} {
		q2, err := reldiv.Divide(transcript, dbCourses, nil, &reldiv.Options{Algorithm: alg})
		if err != nil {
			log.Fatal(err)
		}
		names := make([]string, 0, q2.NumRows())
		for _, row := range q2.Rows() {
			names = append(names, row[0].(string))
		}
		fmt.Printf("  %-20s -> %v\n", alg, names)
	}

	// The no-join aggregation variants count ALL of a student's rows, not
	// just database courses: Ann's optics row pushes her count past |S|
	// (missed), and a student with exactly |S| unrelated courses would be
	// falsely included. Only Dave's total happens to equal |S| here.
	wrong, err := reldiv.Divide(transcript, dbCourses, nil,
		&reldiv.Options{Algorithm: reldiv.HashAggregation, AssumeUniqueInputs: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhash aggregation WITHOUT the semi-join returns %d student(s) — wrong!\n", wrong.NumRows())
	fmt.Println("-> \"it is important to count only those tuples ... which refer to database")
	fmt.Println("   courses\" (§2.2): the aggregate needs a semi-join; hash-division does not.")
}

func printStudents(q *reldiv.Relation) {
	for _, row := range q.Rows() {
		fmt.Printf("  %s\n", row[0])
	}
}
