package reldiv

// System-level integration test: one realistic workload pushed through every
// layer of the repository — workload generation, the storage engine, a
// covering B+-tree index, all six algorithms, partitioned and parallel
// hash-division, the optimizer rewrite — all under a constrained buffer
// pool, all required to agree with the brute-force reference.

import (
	"testing"

	"repro/internal/btree"
	"repro/internal/buffer"
	"repro/internal/disk"
	"repro/internal/division"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/rewrite"
	"repro/internal/workload"
)

func TestFullSystem(t *testing.T) {
	if testing.Short() {
		t.Skip("system test in short mode")
	}
	inst, err := workload.Generate(workload.Config{
		DivisorTuples:      40,
		QuotientCandidates: 300,
		FullFraction:       0.4,
		MatchFraction:      0.8,
		NoisePerCandidate:  3,
		DuplicateFactor:    2,
		Shuffle:            true,
		Seed:               99,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Ground truth.
	memSpec := func() division.Spec {
		return division.Spec{
			Dividend:    exec.NewMemScan(workload.TranscriptSchema, inst.Dividend),
			Divisor:     exec.NewMemScan(workload.CourseSchema, inst.Divisor),
			DivisorCols: []int{1},
		}
	}
	ref, err := division.Reference(memSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != len(inst.QuotientIDs) {
		t.Fatalf("reference %d vs generator ground truth %d", len(ref), len(inst.QuotientIDs))
	}
	qs := memSpec().QuotientSchema()

	// Storage engine with a deliberately small pool: everything must work
	// under eviction pressure.
	pool := buffer.New(64 * 1024)
	rel, err := workload.Load(pool, inst, disk.PaperPageSize)
	if err != nil {
		t.Fatal(err)
	}
	tempDev := disk.NewDevice("temp", disk.PaperRunPageSize)
	// assertNoFixed flags the exact stage that pinned a frame, rather than
	// only discovering the leak after all five stages ran.
	assertNoFixed := func(stage string) {
		t.Helper()
		if n := pool.FixedFrames(); n != 0 {
			t.Fatalf("%s left %d frames fixed", stage, n)
		}
	}
	env := division.Env{Pool: pool, TempDev: tempDev, SortBytes: 16 * 1024}
	storageSpec := func() division.Spec {
		return division.Spec{
			Dividend:    exec.NewTableScan(rel.Dividend, false),
			Divisor:     exec.NewTableScan(rel.Divisor, true),
			DivisorCols: []int{1},
		}
	}

	// 1. Every general algorithm over the storage engine.
	for _, alg := range []division.Algorithm{
		division.AlgNaive, division.AlgSortAggJoin,
		division.AlgHashAggJoin, division.AlgHashDivision,
	} {
		got, err := division.Run(alg, storageSpec(), env)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !division.EqualTupleSets(qs, got, ref) {
			t.Errorf("%v: wrong quotient (%d vs %d)", alg, len(got), len(ref))
		}
		assertNoFixed(alg.String())
	}

	// 2. Covering-index naive division: bulk-load a B+-tree on (student,
	// course) from the sorted dividend and divide off the index.
	idxDev := disk.NewDevice("idx", 4096)
	sortOp := exec.NewSort(exec.NewTableScan(rel.Dividend, false), exec.SortConfig{
		Keys: []int{0, 1}, MemoryBytes: 16 * 1024, Pool: pool, TempDev: tempDev,
	})
	sorted, err := exec.Collect(sortOp)
	if err != nil {
		t.Fatal(err)
	}
	entries := make([]btree.Entry, len(sorted))
	for i, tp := range sorted {
		entries[i] = btree.Entry{Key: tp}
	}
	idx, err := btree.BulkLoad(pool, idxDev, workload.TranscriptSchema, entries, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	divisorSorted := exec.NewSort(exec.NewTableScan(rel.Divisor, true), exec.SortConfig{
		Keys: []int{0}, MemoryBytes: 16 * 1024, Pool: pool, TempDev: tempDev,
	})
	idxSpec := division.Spec{
		Dividend:    exec.NewIndexKeyScan(idx, workload.TranscriptSchema, nil, nil),
		Divisor:     divisorSorted,
		DivisorCols: []int{1},
	}
	got, err := exec.Collect(division.NewNaivePreSorted(idxSpec, env))
	if err != nil {
		t.Fatal(err)
	}
	if !division.EqualTupleSets(qs, got, ref) {
		t.Errorf("indexed naive: wrong quotient (%d vs %d)", len(got), len(ref))
	}
	assertNoFixed("indexed naive division")

	// 3. Partitioned, adaptive, and combined hash-division under a budget.
	qts, kd, kq, err := division.DivideAdaptive(storageSpec(), env, 24*1024, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !division.EqualTupleSets(qs, qts, ref) {
		t.Errorf("adaptive (%d,%d): wrong quotient", kd, kq)
	}
	assertNoFixed("adaptive partitioned hash-division")

	// 4. Parallel execution with bit-vector filtering.
	res, err := parallel.Divide(memSpec(), parallel.Config{
		Workers: 4, Strategy: division.DivisorPartitioning, BitVectorFilter: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !division.EqualTupleSets(qs, res.Quotient, ref) {
		t.Error("parallel: wrong quotient")
	}
	if res.Network.TuplesFiltered == 0 {
		t.Error("bit vector filtered nothing despite noise tuples")
	}
	assertNoFixed("parallel division")

	// 5. The optimizer path: aggregate plan, rewritten plan, same answer.
	transcript := rewrite.NewRel("transcript", workload.TranscriptSchema, func() exec.Operator {
		return exec.NewTableScan(rel.Dividend, false)
	})
	courses := rewrite.NewRel("courses", workload.CourseSchema, func() exec.Operator {
		return exec.NewTableScan(rel.Divisor, true)
	})
	plan := &rewrite.CountEqCard{
		Input: &rewrite.GroupCount{
			Input:     &rewrite.SemiJoin{Left: transcript, Right: courses, LeftCols: []int{1}, RightCols: []int{0}},
			GroupCols: []int{0},
		},
		Of: courses,
	}
	// NOTE: the aggregate plan counts duplicated (student, course) pairs
	// twice, so with a duplicated dividend only the REWRITTEN plan is
	// correct — another face of the paper's duplicate-handling point.
	rewritten, changed := rewrite.Rewrite(plan)
	if !changed {
		t.Fatal("rewrite did not fire")
	}
	op, err := rewrite.Compile(rewritten, env)
	if err != nil {
		t.Fatal(err)
	}
	rwRows, err := exec.Collect(op)
	if err != nil {
		t.Fatal(err)
	}
	if !division.EqualTupleSets(qs, rwRows, ref) {
		t.Error("rewritten plan: wrong quotient")
	}

	// 6. Observability: the public API bumps the process-wide registry, and
	// EXPLAIN ANALYZE profiles the same workload without changing the answer.
	before := obs.Default.Snapshot()
	dividendRel := NewRelation("transcript", Int64Col("student"), Int64Col("course"))
	for _, tp := range inst.Dividend {
		dividendRel.MustInsert(
			workload.TranscriptSchema.Int64(tp, 0), workload.TranscriptSchema.Int64(tp, 1))
	}
	divisorRel := NewRelation("courses", Int64Col("course"))
	for _, tp := range inst.Divisor {
		divisorRel.MustInsert(workload.CourseSchema.Int64(tp, 0))
	}
	quotient, err := Divide(dividendRel, divisorRel, []string{"course"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if quotient.NumRows() != len(ref) {
		t.Errorf("public Divide: %d rows, want %d", quotient.NumRows(), len(ref))
	}
	after := obs.Default.Snapshot()
	if d := after["reldiv.divisions"] - before["reldiv.divisions"]; d != 1 {
		t.Errorf("reldiv.divisions advanced by %d, want 1", d)
	}
	if d := after["reldiv.quotient_rows"] - before["reldiv.quotient_rows"]; d != int64(len(ref)) {
		t.Errorf("reldiv.quotient_rows advanced by %d, want %d", d, len(ref))
	}
	if after["parallel.divisions"] < 1 {
		t.Error("parallel.divisions never advanced despite stage 4")
	}

	analyzed, prof, err := ExplainAnalyze(dividendRel, divisorRel, []string{"course"},
		&Options{Algorithm: HashDivision})
	if err != nil {
		t.Fatal(err)
	}
	if analyzed.NumRows() != len(ref) {
		t.Errorf("ExplainAnalyze: %d rows, want %d", analyzed.NumRows(), len(ref))
	}
	if prof == nil || prof.Root == nil {
		t.Fatal("ExplainAnalyze returned no profile")
	}
	if sum := prof.SumSelf(); sum != prof.Total {
		t.Errorf("profile selves sum to %+v, total is %+v", sum, prof.Total)
	}
	spans := 0
	prof.Walk(func(s *obs.Span, depth int) { spans++ })
	if spans < 4 {
		t.Errorf("profile has only %d spans; expected the phase tree", spans)
	}

	// Nothing may stay pinned in the pool after all of this.
	if pool.FixedFrames() != 0 {
		t.Errorf("system test leaked %d fixed frames", pool.FixedFrames())
	}
}
