package reldiv

// Fuzz coverage for the CSV loader: arbitrary input bytes must either parse
// into a well-formed relation or return an error — never panic, whatever the
// row shape, field type, or string length.

import (
	"bytes"
	"strings"
	"testing"
)

func FuzzFromCSV(f *testing.F) {
	f.Add([]byte("1,10\n2,20\n"))
	f.Add([]byte("1,10,extra\n"))
	f.Add([]byte("not-a-number,10\n"))
	f.Add([]byte("9223372036854775808,1\n")) // int64 overflow
	f.Add([]byte("1\n"))                     // missing field
	f.Add([]byte(""))
	f.Add([]byte("\"unterminated,1\n"))
	f.Add([]byte("1," + strings.Repeat("x", 1000) + "\n")) // oversized string
	f.Add([]byte("1,\x00\xff\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Integer-typed columns: every malformed field must be an error.
		rel, err := FromCSV(bytes.NewReader(data), "fuzz",
			Int64Col("student"), Int64Col("course"))
		if err == nil && rel == nil {
			t.Fatal("nil relation without error")
		}
		if err == nil {
			_ = rel.Rows() // decoding what was accepted must not panic either
		}

		// String-typed second column with a tight width: oversized fields
		// must be rejected, not truncated or panicked on.
		rel, err = FromCSV(bytes.NewReader(data), "fuzz",
			Int64Col("student"), StringCol("course", 8))
		if err == nil {
			for _, row := range rel.Rows() {
				if s, ok := row[1].(string); ok && len(s) > 8 {
					t.Fatalf("oversized string %q accepted past declared width", s)
				}
			}
		}
	})
}
