package reldiv

// Fuzz coverage for the untrusted-bytes decoders: the CSV loader, the WAL
// record codec, and the distributed-exchange frame codec. Arbitrary input
// bytes must either parse into a well-formed value or return a typed error —
// never panic, whatever the shape.

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/netexchange"
	"repro/internal/wal"
)

func FuzzFromCSV(f *testing.F) {
	f.Add([]byte("1,10\n2,20\n"))
	f.Add([]byte("1,10,extra\n"))
	f.Add([]byte("not-a-number,10\n"))
	f.Add([]byte("9223372036854775808,1\n")) // int64 overflow
	f.Add([]byte("1\n"))                     // missing field
	f.Add([]byte(""))
	f.Add([]byte("\"unterminated,1\n"))
	f.Add([]byte("1," + strings.Repeat("x", 1000) + "\n")) // oversized string
	f.Add([]byte("1,\x00\xff\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Integer-typed columns: every malformed field must be an error.
		rel, err := FromCSV(bytes.NewReader(data), "fuzz",
			Int64Col("student"), Int64Col("course"))
		if err == nil && rel == nil {
			t.Fatal("nil relation without error")
		}
		if err == nil {
			_ = rel.Rows() // decoding what was accepted must not panic either
		}

		// String-typed second column with a tight width: oversized fields
		// must be rejected, not truncated or panicked on.
		rel, err = FromCSV(bytes.NewReader(data), "fuzz",
			Int64Col("student"), StringCol("course", 8))
		if err == nil {
			for _, row := range rel.Rows() {
				if s, ok := row[1].(string); ok && len(s) > 8 {
					t.Fatalf("oversized string %q accepted past declared width", s)
				}
			}
		}
	})
}

// FuzzExchangeFrame drives the exchange wire codec the same way the WAL
// fuzzer drives its record codec: a fresh encoding must round-trip exactly
// (header and payload both), a single flipped bit anywhere in the frame must
// surface as netexchange.ErrCorruptFrame — the checksum covers everything
// after the length prefix, and a corrupted prefix changes the checksummed
// range — and raw garbage must come back typed or as the clean all-zero
// end-of-stream, never a panic.
func FuzzExchangeFrame(f *testing.F) {
	f.Add([]byte("a batch of tuples"), byte(5), uint16(0), uint32(2), uint16(0))
	f.Add([]byte{}, byte(3), uint16(0), uint32(0), uint16(7))                        // control frame, empty payload
	f.Add(bytes.Repeat([]byte{0xFF}, 64), byte(9), uint16(3), uint32(4), uint16(91)) // phase-tagged collect
	f.Add([]byte("\x00\x00\x00\x00"), byte(13), uint16(0), uint32(0), uint16(33))
	f.Fuzz(func(t *testing.T, payload []byte, typ byte, phase uint16, count uint32, flip uint16) {
		h := netexchange.FrameHeader{Type: typ, Phase: phase, Count: count}
		enc := netexchange.EncodeFrame(nil, h, payload)

		// Round trip: header fields and payload come back exactly, and the
		// whole encoding is consumed.
		got, gotPayload, n, err := netexchange.DecodeFrame(enc)
		if err != nil {
			t.Fatalf("decode of fresh encoding: %v", err)
		}
		if got != h || n != len(enc) || !bytes.Equal(gotPayload, payload) {
			t.Fatalf("round trip: header %+v want %+v, consumed %d of %d, payload match %v",
				got, h, n, len(enc), bytes.Equal(gotPayload, payload))
		}

		// Corruption: flipping any single bit must be detected as the typed
		// sentinel. Unlike the WAL codec there is no silent end-of-stream
		// escape here — the buffer is always long enough to hold a prefix, so
		// every flip must error.
		bad := bytes.Clone(enc)
		pos := int(flip) % len(bad)
		bad[pos] ^= 1 << (flip % 8)
		if _, _, _, err := netexchange.DecodeFrame(bad); !errors.Is(err, netexchange.ErrCorruptFrame) {
			t.Fatalf("flipped bit at byte %d: got %v, want ErrCorruptFrame", pos, err)
		}

		// Raw garbage: never panic, errors always typed, and the no-error
		// no-progress case is reserved for all-zero padding.
		if _, _, n, err := netexchange.DecodeFrame(payload); err != nil {
			if !errors.Is(err, netexchange.ErrCorruptFrame) {
				t.Fatalf("garbage decode returned untyped error %v", err)
			}
		} else if n == 0 {
			for _, b := range payload {
				if b != 0 {
					t.Fatalf("decode of %d nonzero bytes made no progress without error", len(payload))
				}
			}
		} else if n > len(payload) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(payload))
		}
	})
}

// FuzzWALRecord drives the WAL record codec with arbitrary bytes: a valid
// encoding must round-trip exactly, a single flipped bit must never decode
// as a valid record, and raw garbage must come back as the typed wal.ErrCorrupt
// (or a clean end-of-stream) — never a panic, whatever the bytes.
func FuzzWALRecord(f *testing.F) {
	f.Add([]byte("a committed row"), uint16(0))
	f.Add([]byte{0x00}, uint16(3))
	f.Add(bytes.Repeat([]byte{0xFF}, 300), uint16(11))
	f.Add([]byte(""), uint16(0))
	f.Add([]byte("\x00\x00\x00\x00 zero length field inside"), uint16(1))
	f.Fuzz(func(t *testing.T, payload []byte, flip uint16) {
		// Round trip: every non-empty payload encodes and decodes back.
		if len(payload) > 0 {
			enc := wal.EncodeRecord(nil, payload)
			got, n, err := wal.DecodeRecord(enc)
			if err != nil {
				t.Fatalf("decode of fresh encoding: %v", err)
			}
			if n != len(enc) || !bytes.Equal(got, payload) {
				t.Fatalf("round trip consumed %d of %d bytes, payload match %v",
					n, len(enc), bytes.Equal(got, payload))
			}

			// Corruption: flipping any single bit must be detected. The only
			// other legal outcome is the end-of-stream sentinel, reachable
			// when the flip zeroes the length field.
			bad := bytes.Clone(enc)
			pos := int(flip) % len(bad)
			bad[pos] ^= 1 << (flip % 8)
			got, n, err = wal.DecodeRecord(bad)
			if err == nil && n != 0 {
				t.Fatalf("flipped bit at byte %d decoded as a valid %d-byte record %q",
					pos, n, got)
			}
			if err != nil && !errors.Is(err, wal.ErrCorrupt) {
				t.Fatalf("corruption surfaced untyped error %v", err)
			}
		}

		// Raw garbage: never panic, and errors are always the typed sentinel.
		got, n, err := wal.DecodeRecord(payload)
		switch {
		case err != nil:
			if !errors.Is(err, wal.ErrCorrupt) {
				t.Fatalf("garbage decode returned untyped error %v", err)
			}
		case n == 0:
			// Clean end of stream.
		default:
			if n > len(payload) {
				t.Fatalf("decode consumed %d of %d bytes", n, len(payload))
			}
			if len(got) == 0 {
				t.Fatal("valid record with empty payload")
			}
		}
	})
}
