package reldiv

// Fuzz coverage for the untrusted-bytes decoders: the CSV loader and the WAL
// record codec. Arbitrary input bytes must either parse into a well-formed
// value or return a typed error — never panic, whatever the shape.

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/wal"
)

func FuzzFromCSV(f *testing.F) {
	f.Add([]byte("1,10\n2,20\n"))
	f.Add([]byte("1,10,extra\n"))
	f.Add([]byte("not-a-number,10\n"))
	f.Add([]byte("9223372036854775808,1\n")) // int64 overflow
	f.Add([]byte("1\n"))                     // missing field
	f.Add([]byte(""))
	f.Add([]byte("\"unterminated,1\n"))
	f.Add([]byte("1," + strings.Repeat("x", 1000) + "\n")) // oversized string
	f.Add([]byte("1,\x00\xff\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Integer-typed columns: every malformed field must be an error.
		rel, err := FromCSV(bytes.NewReader(data), "fuzz",
			Int64Col("student"), Int64Col("course"))
		if err == nil && rel == nil {
			t.Fatal("nil relation without error")
		}
		if err == nil {
			_ = rel.Rows() // decoding what was accepted must not panic either
		}

		// String-typed second column with a tight width: oversized fields
		// must be rejected, not truncated or panicked on.
		rel, err = FromCSV(bytes.NewReader(data), "fuzz",
			Int64Col("student"), StringCol("course", 8))
		if err == nil {
			for _, row := range rel.Rows() {
				if s, ok := row[1].(string); ok && len(s) > 8 {
					t.Fatalf("oversized string %q accepted past declared width", s)
				}
			}
		}
	})
}

// FuzzWALRecord drives the WAL record codec with arbitrary bytes: a valid
// encoding must round-trip exactly, a single flipped bit must never decode
// as a valid record, and raw garbage must come back as the typed wal.ErrCorrupt
// (or a clean end-of-stream) — never a panic, whatever the bytes.
func FuzzWALRecord(f *testing.F) {
	f.Add([]byte("a committed row"), uint16(0))
	f.Add([]byte{0x00}, uint16(3))
	f.Add(bytes.Repeat([]byte{0xFF}, 300), uint16(11))
	f.Add([]byte(""), uint16(0))
	f.Add([]byte("\x00\x00\x00\x00 zero length field inside"), uint16(1))
	f.Fuzz(func(t *testing.T, payload []byte, flip uint16) {
		// Round trip: every non-empty payload encodes and decodes back.
		if len(payload) > 0 {
			enc := wal.EncodeRecord(nil, payload)
			got, n, err := wal.DecodeRecord(enc)
			if err != nil {
				t.Fatalf("decode of fresh encoding: %v", err)
			}
			if n != len(enc) || !bytes.Equal(got, payload) {
				t.Fatalf("round trip consumed %d of %d bytes, payload match %v",
					n, len(enc), bytes.Equal(got, payload))
			}

			// Corruption: flipping any single bit must be detected. The only
			// other legal outcome is the end-of-stream sentinel, reachable
			// when the flip zeroes the length field.
			bad := bytes.Clone(enc)
			pos := int(flip) % len(bad)
			bad[pos] ^= 1 << (flip % 8)
			got, n, err = wal.DecodeRecord(bad)
			if err == nil && n != 0 {
				t.Fatalf("flipped bit at byte %d decoded as a valid %d-byte record %q",
					pos, n, got)
			}
			if err != nil && !errors.Is(err, wal.ErrCorrupt) {
				t.Fatalf("corruption surfaced untyped error %v", err)
			}
		}

		// Raw garbage: never panic, and errors are always the typed sentinel.
		got, n, err := wal.DecodeRecord(payload)
		switch {
		case err != nil:
			if !errors.Is(err, wal.ErrCorrupt) {
				t.Fatalf("garbage decode returned untyped error %v", err)
			}
		case n == 0:
			// Clean end of stream.
		default:
			if n > len(payload) {
				t.Fatalf("decode consumed %d of %d bytes", n, len(payload))
			}
			if len(got) == 0 {
				t.Fatal("valid record with empty payload")
			}
		}
	})
}
