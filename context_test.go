package reldiv

import (
	"context"
	"errors"
	"testing"
	"time"
)

func bigRelations(students, courses int) (*Relation, *Relation) {
	dividend := NewRelation("transcript", Int64Col("student"), Int64Col("course"))
	for s := 0; s < students; s++ {
		for c := 0; c < courses; c++ {
			dividend.MustInsert(s, c)
		}
	}
	divisor := NewRelation("courses", Int64Col("course"))
	for c := 0; c < courses; c++ {
		divisor.MustInsert(c)
	}
	return dividend, divisor
}

// TestDivideContextMatchesDivide: a background context changes nothing.
func TestDivideContextMatchesDivide(t *testing.T) {
	dividend, divisor := bigRelations(50, 8)
	want, err := Divide(dividend, divisor, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []*Options{
		nil,
		{Algorithm: HashDivision},
		{Workers: 4},
		{Workers: 3, DivisorPartitioned: true},
	} {
		got, err := DivideContext(context.Background(), dividend, divisor, nil, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if got.NumRows() != want.NumRows() {
			t.Errorf("%+v: %d rows, want %d", opts, got.NumRows(), want.NumRows())
		}
	}
}

// TestDivideContextPreCancelled: an already-dead context fails fast for both
// the serial and the parallel paths.
func TestDivideContextPreCancelled(t *testing.T) {
	dividend, divisor := bigRelations(50, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, opts := range []*Options{nil, {Workers: 4}} {
		if _, err := DivideContext(ctx, dividend, divisor, nil, opts); !errors.Is(err, context.Canceled) {
			t.Errorf("opts %+v: pre-cancelled division returned %v", opts, err)
		}
	}
}

// TestDivideContextCancelMidParallel cancels a running parallel division;
// it must stop promptly with context.Canceled.
func TestDivideContextCancelMidParallel(t *testing.T) {
	dividend, divisor := bigRelations(3000, 20)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := DivideContext(ctx, dividend, divisor, nil, &Options{Workers: 4})
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled division returned %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled parallel division did not return")
	}
}

// TestOptionsTimeout: Timeout is enforced on the serial path.
func TestOptionsTimeout(t *testing.T) {
	dividend, divisor := bigRelations(400, 50)
	deadline := time.Now().Add(2 * time.Second)
	// The division is fast; loop until the shrinking timeout bites to avoid
	// a flaky fixed threshold.
	for timeout := 500 * time.Microsecond; time.Now().Before(deadline); timeout /= 2 {
		_, err := DivideContext(context.Background(), dividend, divisor, nil,
			&Options{Algorithm: Naive, Timeout: timeout})
		if err == nil {
			continue
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("timeout surfaced as %v", err)
		}
		return
	}
	t.Skip("division always beat the timeout on this machine")
}
